"""Unit tests for graph generators."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.graph.generators import (
    PAPER_EXAMPLE_SUPERNODES,
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    erdos_renyi_gnm,
    paper_example_graph,
    path_graph,
    planted_community_graph,
    rmat_graph,
    star_graph,
    watts_strogatz_graph,
)


def test_empty_path_cycle_star():
    assert empty_graph(5).num_edges == 0
    assert path_graph(5).num_edges == 4
    assert cycle_graph(5).num_edges == 5
    assert star_graph(5).num_edges == 4
    with pytest.raises(InvalidParameterError):
        cycle_graph(2)


def test_complete_graph_edge_count():
    for n in (0, 1, 2, 5, 8):
        assert complete_graph(n).num_edges == n * (n - 1) // 2


def test_erdos_renyi_exact_m_and_deterministic():
    e1 = erdos_renyi_gnm(100, 250, seed=3)
    e2 = erdos_renyi_gnm(100, 250, seed=3)
    assert e1.num_edges == 250
    assert e1 == e2
    assert erdos_renyi_gnm(100, 250, seed=4) != e1


def test_erdos_renyi_caps_at_complete():
    e = erdos_renyi_gnm(5, 100, seed=0)
    assert e.num_edges == 10


def test_rmat_size_and_determinism():
    e = rmat_graph(8, 4, seed=11)
    assert e.num_vertices == 256
    # dedup loses some edges but most survive
    assert 0.5 * 4 * 256 < e.num_edges <= 4 * 256
    assert e == rmat_graph(8, 4, seed=11)


def test_rmat_skew():
    e = rmat_graph(10, 8, seed=5)
    deg = e.degrees()
    # power-law-ish: max degree far above mean
    assert deg.max() > 4 * deg.mean()


def test_barabasi_albert():
    e = barabasi_albert_graph(100, 3, seed=2)
    assert e.num_vertices == 100
    deg = e.degrees()
    assert deg.min() >= 1
    assert deg.max() > deg.mean() * 2


def test_watts_strogatz():
    e = watts_strogatz_graph(60, 4, 0.1, seed=1)
    assert e.num_vertices == 60
    assert e.num_edges <= 120
    with pytest.raises(InvalidParameterError):
        watts_strogatz_graph(10, 3, 0.1)


def test_planted_communities_structure():
    edges, comms = planted_community_graph(4, 6, 8, p_intra=1.0, overlap=2, seed=9)
    assert len(comms) == 4
    # consecutive communities share exactly `overlap` vertices
    for a, b in zip(comms, comms[1:]):
        assert np.intersect1d(a, b).size == 2
    # p_intra=1 means each community is a clique
    for c in comms:
        sub = {
            (min(x, y), max(x, y))
            for x in c.tolist()
            for y in c.tolist()
            if x != y
        }
        present = set(edges.as_tuples())
        assert sub <= present


def test_paper_example_graph_shape():
    e = paper_example_graph()
    assert e.num_vertices == 11
    assert e.num_edges == 27
    all_edges = {edge for _, es in PAPER_EXAMPLE_SUPERNODES.values() for e2 in [es] for edge in e2}
    assert set(e.as_tuples()) == all_edges
