"""Unit tests for the synthetic dataset registry."""

import pytest

from repro.errors import InvalidParameterError
from repro.graph.datasets import DATASETS, dataset_names, load_dataset, load_dataset_graph


def test_names_in_paper_order():
    assert dataset_names() == [
        "amazon", "dblp", "youtube", "livejournal", "orkut", "friendster",
    ]


def test_unknown_name_raises():
    with pytest.raises(InvalidParameterError):
        load_dataset("nope")


def test_small_datasets_generate_and_cache():
    a = load_dataset("amazon")
    b = load_dataset("amazon")
    assert a is b  # memoized
    assert a.num_edges > 0


def test_relative_size_ordering():
    sizes = [load_dataset(n).num_edges for n in ("amazon", "dblp", "youtube")]
    assert sizes[0] < sizes[2]


def test_scale_factor_grows():
    small = load_dataset("amazon", scale_factor=0.5)
    base = load_dataset("amazon")
    assert small.num_vertices < base.num_vertices


def test_graph_loader():
    g = load_dataset_graph("amazon")
    assert g.num_edges == load_dataset("amazon").num_edges


def test_paper_reference_sizes_recorded():
    assert DATASETS["friendster"].paper_edges == 1_806_067_135
