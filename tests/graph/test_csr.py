"""Unit tests for CSRGraph."""

import numpy as np
import pytest

from repro.graph import CSRGraph, build_edgelist, build_graph
from repro.graph.generators import complete_graph, erdos_renyi_gnm


@pytest.fixture
def triangle_plus_tail():
    # triangle 0-1-2 plus tail 2-3
    return build_graph([0, 0, 1, 2], [1, 2, 2, 3])


def test_shape_and_degrees(triangle_plus_tail):
    g = triangle_plus_tail
    assert g.num_vertices == 4
    assert g.num_edges == 4
    assert g.degrees().tolist() == [2, 2, 3, 1]
    assert g.degree(2) == 3


def test_neighbors_sorted(triangle_plus_tail):
    g = triangle_plus_tail
    assert g.neighbors(2).tolist() == [0, 1, 3]
    assert g.neighbors(3).tolist() == [2]


def test_neighbor_edge_ids_align(triangle_plus_tail):
    g = triangle_plus_tail
    for u in range(g.num_vertices):
        for w, eid in zip(g.neighbors(u), g.neighbor_edge_ids(u)):
            assert g.edges.edge_id(u, int(w)) == int(eid)


def test_locate_slots(triangle_plus_tail):
    g = triangle_plus_tail
    slots = g.locate_slots(np.array([0, 2, 3]), np.array([1, 3, 0]))
    assert slots[0] >= 0 and slots[1] >= 0
    assert slots[2] == -1
    # edge id stored at located slot matches
    assert g.edge_ids[slots[0]] == g.edges.edge_id(0, 1)


def test_has_edges(triangle_plus_tail):
    g = triangle_plus_tail
    res = g.has_edges(np.array([0, 0]), np.array([2, 3]))
    assert res.tolist() == [True, False]


def test_to_scipy_symmetric(triangle_plus_tail):
    m = triangle_plus_tail.to_scipy()
    assert (m != m.T).nnz == 0
    assert m.sum() == 2 * triangle_plus_tail.num_edges


def test_to_networkx_roundtrip(triangle_plus_tail):
    nxg = triangle_plus_tail.to_networkx()
    assert nxg.number_of_edges() == 4
    assert nxg.has_edge(0, 2)


def test_empty_graph():
    g = CSRGraph.from_edgelist(build_edgelist([], []))
    assert g.num_vertices == 0
    assert g.num_edges == 0


def test_random_graph_csr_consistency():
    edges = erdos_renyi_gnm(50, 120, seed=7)
    g = CSRGraph.from_edgelist(edges)
    # every canonical edge appears exactly twice in CSR slots
    counts = np.bincount(g.edge_ids, minlength=g.num_edges)
    assert np.all(counts == 2)
    # adjacency is symmetric
    for u in range(g.num_vertices):
        for w in g.neighbors(u):
            assert u in g.neighbors(int(w))


def test_complete_graph_degrees():
    g = CSRGraph.from_edgelist(complete_graph(6))
    assert np.all(g.degrees() == 5)


# ----------------------------------------------------------------------
# Fused single-pass build vs the legacy keyed build
# ----------------------------------------------------------------------

def _fused_cases():
    from repro.graph.generators import paper_example_graph, rmat_graph

    yield build_edgelist([], [])
    yield build_edgelist([0, 2], [5, 4], num_vertices=9)  # isolated vertices
    yield paper_example_graph()
    yield erdos_renyi_gnm(60, 300, seed=2)
    yield rmat_graph(7, 6, seed=3)


def test_fused_build_matches_keyed_build():
    from repro.graph.csr import _from_edgelist_keyed

    for edges in _fused_cases():
        g = CSRGraph.from_edgelist(edges)
        ref = _from_edgelist_keyed(edges)
        assert np.array_equal(np.asarray(g.indptr), np.asarray(ref.indptr))
        assert np.array_equal(np.asarray(g.indices), np.asarray(ref.indices))
        assert np.array_equal(np.asarray(g.edge_ids), np.asarray(ref.edge_ids))


def test_edge_sort_order_cached_and_derived_agree():
    for edges in _fused_cases():
        expected = np.argsort(np.asarray(edges.v), kind="stable")
        g = CSRGraph.from_edgelist(edges)
        cached = g.edge_sort_order()
        assert np.array_equal(cached, expected)
        assert not cached.flags.writeable
        # a graph that never built (attach path) derives it from the CSR
        bare = CSRGraph(
            np.asarray(g.indptr), np.asarray(g.indices),
            np.asarray(g.edge_ids), g.edges,
        )
        assert bare._edge_order is None
        assert np.array_equal(bare.edge_sort_order(), expected)


def test_from_edgelist_accepts_cached_edge_order():
    for edges in _fused_cases():
        ref = CSRGraph.from_edgelist(edges)
        g = CSRGraph.from_edgelist(edges, edge_order=ref.edge_sort_order())
        assert np.array_equal(np.asarray(g.indptr), np.asarray(ref.indptr))
        assert np.array_equal(np.asarray(g.indices), np.asarray(ref.indices))
        assert np.array_equal(np.asarray(g.edge_ids), np.asarray(ref.edge_ids))


def test_from_edgelist_rejects_wrong_edge_order():
    from repro.errors import GraphConstructionError

    edges = erdos_renyi_gnm(20, 60, seed=1)
    good = CSRGraph.from_edgelist(edges).edge_sort_order()
    bad = np.array(good)
    if bad.size >= 2:
        bad[[0, 1]] = bad[[1, 0]]
    for wrong in (bad, good[:-1]):
        with pytest.raises(GraphConstructionError):
            CSRGraph.from_edgelist(edges, edge_order=wrong)
