"""Unit tests for EdgeList and the canonicalizing builder."""

import numpy as np
import pytest

from repro.errors import EdgeNotFoundError, GraphConstructionError
from repro.graph import EdgeList, build_edgelist


def test_build_canonicalizes_order_and_duplicates():
    e = build_edgelist([1, 0, 2, 2], [0, 1, 1, 1])
    assert e.num_edges == 2
    assert e.as_tuples() == [(0, 1), (1, 2)]


def test_build_removes_self_loops():
    e = build_edgelist([0, 1, 1], [0, 1, 2])
    assert e.as_tuples() == [(1, 2)]


def test_build_empty():
    e = build_edgelist([], [])
    assert e.num_edges == 0
    assert e.num_vertices == 0


def test_build_respects_explicit_num_vertices():
    e = build_edgelist([0], [1], num_vertices=10)
    assert e.num_vertices == 10


def test_constructor_rejects_unsorted():
    with pytest.raises(GraphConstructionError):
        EdgeList(np.array([1, 0]), np.array([2, 1]), 3)


def test_constructor_rejects_noncanonical():
    with pytest.raises(GraphConstructionError):
        EdgeList(np.array([2]), np.array([1]), 3)


def test_constructor_rejects_out_of_range():
    with pytest.raises(GraphConstructionError):
        EdgeList(np.array([0]), np.array([5]), 3)


def test_edge_id_lookup_both_orders():
    e = build_edgelist([0, 0, 1], [1, 2, 2])
    assert e.edge_id(0, 1) == 0
    assert e.edge_id(1, 0) == 0
    assert e.edge_id(2, 1) == 2


def test_edge_ids_batch_and_missing():
    e = build_edgelist([0, 0, 1], [1, 2, 2])
    ids = e.edge_ids(np.array([2, 0]), np.array([1, 2]))
    assert ids.tolist() == [2, 1]
    missing = e.edge_ids(np.array([0]), np.array([3]), strict=False)
    assert missing.tolist() == [-1]
    with pytest.raises(EdgeNotFoundError):
        e.edge_ids(np.array([0]), np.array([3]))


def test_has_edge():
    e = build_edgelist([0], [1], num_vertices=3)
    assert e.has_edge(1, 0)
    assert not e.has_edge(0, 2)


def test_endpoints_and_degrees():
    e = build_edgelist([0, 0, 1], [1, 2, 2])
    u, v = e.endpoints(np.array([0, 2]))
    assert u.tolist() == [0, 1] and v.tolist() == [1, 2]
    assert e.degrees().tolist() == [2, 2, 2]


def test_subset_by_mask_and_ids():
    e = build_edgelist([0, 0, 1], [1, 2, 2])
    sub = e.subset(np.array([True, False, True]))
    assert sub.as_tuples() == [(0, 1), (1, 2)]
    sub2 = e.subset(np.array([2, 0]))
    assert sub2.as_tuples() == [(0, 1), (1, 2)]


def test_equality_and_hash():
    a = build_edgelist([0], [1])
    b = build_edgelist([1], [0])
    assert a == b
    assert hash(a) == hash(b)
    assert a != build_edgelist([0, 1], [1, 2])


def test_immutability():
    e = build_edgelist([0], [1])
    with pytest.raises(ValueError):
        e.u[0] = 5
