"""Unit tests for graph property utilities."""

import pytest

from repro.graph import CSRGraph, build_edgelist
from repro.graph.generators import complete_graph, empty_graph, path_graph, star_graph
from repro.graph.properties import (
    degree_histogram,
    global_clustering_coefficient,
    num_connected_components,
    summarize,
)


def test_summarize_basic():
    edges = build_edgelist([0, 0, 1], [1, 2, 2], num_vertices=5)
    s = summarize(edges)
    assert s.num_vertices == 5
    assert s.num_edges == 3
    assert s.max_degree == 2
    assert s.num_isolated == 2
    assert s.row()[0] == 5


def test_summarize_empty():
    s = summarize(empty_graph(3))
    assert s.max_degree == 0
    assert s.mean_degree == 0.0
    assert s.num_isolated == 3


def test_degree_histogram():
    hist = degree_histogram(star_graph(5))
    assert hist.tolist() == [0, 4, 0, 0, 1]
    assert degree_histogram(empty_graph(0)).tolist() == [0]


def test_num_connected_components():
    edges = build_edgelist([0, 2], [1, 3], num_vertices=5)
    g = CSRGraph.from_edgelist(edges)
    assert num_connected_components(g) == 3
    assert num_connected_components(CSRGraph.from_edgelist(empty_graph(0))) == 0


def test_clustering_coefficient():
    assert global_clustering_coefficient(
        CSRGraph.from_edgelist(complete_graph(5))
    ) == pytest.approx(1.0)
    assert global_clustering_coefficient(
        CSRGraph.from_edgelist(path_graph(5))
    ) == 0.0


def test_clustering_matches_networkx():
    nx = pytest.importorskip("networkx")
    from repro.graph.generators import erdos_renyi_gnm

    g = CSRGraph.from_edgelist(erdos_renyi_gnm(40, 160, seed=2))
    ours = global_clustering_coefficient(g)
    theirs = nx.transitivity(g.to_networkx())
    assert ours == pytest.approx(theirs)
