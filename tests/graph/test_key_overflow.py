"""Regression tests for the u·N + v key overflow past ~46341 vertices.

``u * num_vertices + v`` wraps an int32 once ``N² > 2³¹`` even when
every vertex id comfortably fits int32 — so an int32-indexed graph over
70000 vertices must still compute its keyed searchsorted lookups in
int64. These tests pin the fixed behavior of ``CSRGraph.edge_key_of`` /
``locate_slots`` at exactly such a vertex count.
"""

import numpy as np

from repro.graph import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.parallel import DtypePolicy, ExecutionContext

I32_MAX = np.iinfo(np.int32).max

#: vertex count whose squared key space exceeds int32 (70000² ≈ 4.9e9)
N = 70_000


def _high_id_graph(index_dtype=None, ctx=None) -> CSRGraph:
    """A tiny graph living at the top of a 70000-vertex id space.

    One triangle among the three highest ids plus a long chord from
    vertex 0 — every keyed lookup on the triangle computes products
    beyond int32 range.
    """
    a, b, c = N - 3, N - 2, N - 1
    u = np.array([0, a, a, b])
    v = np.array([a, b, c, c])
    edges = EdgeList(u, v, num_vertices=N)
    return CSRGraph.from_edgelist(edges, ctx=ctx, index_dtype=index_dtype)


def test_int32_graph_gets_int64_keys():
    g = _high_id_graph(index_dtype=np.int32)
    assert g.index_dtype == np.dtype(np.int32)  # ids fit
    assert g.key_dtype == np.dtype(np.int64)    # products do not
    assert g.slot_keys.dtype == np.dtype(np.int64)
    # the keys really are beyond int32 range — the overflow is latent,
    # not hypothetical
    assert int(g.slot_keys.max()) > I32_MAX


def test_edge_key_of_widens_before_multiplying():
    g = _high_id_graph(index_dtype=np.int32)
    a, b = N - 3, N - 2
    key = g.edge_key_of(np.array([a], dtype=np.int32), np.array([b], dtype=np.int32))
    assert key.dtype == np.dtype(np.int64)
    assert int(key[0]) == a * N + b  # exact, no wraparound


def test_locate_slots_correct_past_int32_key_range():
    g = _high_id_graph(index_dtype=np.int32)
    a, b, c = N - 3, N - 2, N - 1
    us = np.array([a, a, b, 0, a, b, 0])
    ws = np.array([b, c, c, a, 0, a, 1])
    present = g.has_edges(us, ws)
    assert present.tolist() == [True, True, True, True, True, True, False]
    slots = g.locate_slots(us[:4], ws[:4])
    assert np.all(slots >= 0)
    # slots resolve to the canonical edge ids: edges sorted by (u, v) are
    # (0,a)=0, (a,b)=1, (a,c)=2, (b,c)=3
    assert g.edge_ids[slots].tolist() == [1, 2, 3, 0]


def test_triangle_pipeline_exact_on_high_id_graph():
    from repro.equitruss import build_index, equitruss_serial
    from repro.triangles import enumerate_triangles

    for dtype_policy in ("auto", "int64"):
        ctx = ExecutionContext(dtype=dtype_policy)
        g = _high_id_graph(ctx=ctx)
        tri = enumerate_triangles(g, ctx=ctx)
        assert tri.count == 1  # exactly the {a, b, c} triangle
        idx = build_index(g, "coptimal", ctx=ctx).index
        assert idx == equitruss_serial(g)


def test_streaming_builder_keys_exact_past_int32():
    """StreamingEdgeListBuilder folds chunks through u·n + v set keys;
    at 70000 vertices those keys exceed int32 and must stay int64
    through renumber-on-growth and finalize."""
    from repro.graph.streaming import StreamingEdgeListBuilder

    a, b, c = N - 3, N - 2, N - 1
    builder = StreamingEdgeListBuilder()
    builder.add_chunk(np.array([0, a]), np.array([a, b]))  # grows n to b+1
    builder.add_chunk(np.array([c, b]), np.array([a, c]))  # regrows to N
    edges = builder.finalize(num_vertices=N)
    assert edges.num_vertices == N
    assert edges.as_tuples() == [(0, a), (a, b), (a, c), (b, c)]
    # re-finalizing at a larger id space re-keys with the wider n — the
    # second overflow-prone product in streaming.finalize
    wider = builder.finalize(num_vertices=N + 7)
    assert wider.as_tuples() == [(0, a), (a, b), (a, c), (b, c)]


def test_fused_build_matches_keyed_past_int32():
    """The fused single-pass Init and the legacy keyed build agree at a
    vertex count whose key space exceeds int32 (both int64-guarded)."""
    from repro.graph.csr import _from_edgelist_keyed

    for dt in (np.int32, np.int64):
        g = _high_id_graph(index_dtype=dt)
        ref = _from_edgelist_keyed(g.edges, index_dtype=dt)
        assert np.array_equal(np.asarray(g.indptr), np.asarray(ref.indptr))
        assert np.array_equal(np.asarray(g.indices), np.asarray(ref.indices))
        assert np.array_equal(np.asarray(g.edge_ids), np.asarray(ref.edge_ids))
        assert np.array_equal(g.edge_sort_order(), ref.edge_sort_order())


def test_auto_policy_resolves_int32_indices_int64_keys():
    policy = DtypePolicy("auto")
    assert policy.resolve(N) == np.dtype(np.int32)
    assert policy.key_dtype(N) == np.dtype(np.int64)
    ctx = ExecutionContext(dtype="auto")
    g = _high_id_graph(ctx=ctx)
    assert g.index_dtype == np.dtype(np.int32)
    assert g.key_dtype == np.dtype(np.int64)
