"""Journal protocol: publish → replay equals a from-scratch rebuild.

``DynamicEquiTruss.publish_to`` journals every update batch; an attached
reader replaying them must land on the same trussness (and equivalent
supergraph) as rebuilding the index from the mutated graph. Swaps move
the store generation; readers detect them and re-attach; a journal whose
epoch no longer matches is stale, never silently replayed.
"""

import numpy as np
import pytest

from repro.community import search_communities
from repro.equitruss.dynamic import DynamicEquiTruss
from repro.equitruss.pipeline import build_index
from repro.errors import CorruptStoreError, StaleStoreError
from repro.graph import CSRGraph
from repro.graph.generators import erdos_renyi_gnm, paper_example_graph
from repro.store import attach_store
from repro.store.journal import (
    JournalReader,
    StoreJournal,
    default_journal_path,
)


@pytest.fixture
def built(tmp_path):
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(120, 700, seed=3))
    result = build_index(g, "afforest", store_path=tmp_path / "g.eqtsidx")
    return g, result


def _mutate(g, journal, *, seed=0, inserts=6, removes=3):
    """Writer-side dynamic maintenance publishing to ``journal``."""
    dyn = DynamicEquiTruss(g, "afforest")
    dyn.publish_to(journal)
    rng = np.random.default_rng(seed)
    us = rng.integers(0, g.num_vertices, size=inserts)
    vs = rng.integers(0, g.num_vertices, size=inserts)
    keep = us != vs
    dyn.insert_edges(us[keep], vs[keep])
    dyn.remove_edges(g.edges.u[:removes].copy(), g.edges.v[:removes].copy())
    return dyn


def assert_same_communities(index_a, index_b, vertices, ks=(3, 4)):
    for q in vertices:
        for k in ks:
            a = search_communities(index_a, q, k)
            b = search_communities(index_b, q, k)
            assert len(a) == len(b), (q, k)
            for x, y in zip(a, b):
                assert x.k == y.k
                assert np.array_equal(x.edge_ids, y.edge_ids), (q, k)


def test_replay_matches_scratch_rebuild(built):
    g, result = built
    journal = StoreJournal.for_store(result.store_path)
    dyn = _mutate(g, journal)
    assert journal.generation == 3  # base 1 + insert batch + remove batch
    assert len(journal) == 2

    store = attach_store(result.store_path)
    engine = store.engine()
    assert store.pending_updates() == 2
    report = store.refresh()
    assert report.applied == 2 and not report.swapped
    assert report.generation == 3
    assert store.pending_updates() == 0

    scratch = build_index(dyn.graph, "afforest").index
    assert np.array_equal(store.index.trussness, scratch.trussness)
    assert store.index.num_supernodes == scratch.num_supernodes
    assert store.index.num_superedges == scratch.num_superedges
    assert_same_communities(
        store.index, scratch, range(0, g.num_vertices, 7)
    )
    # the rebound engine serves from the replayed index
    got = engine.query(5, 3)
    expected = search_communities(scratch, 5, 3)
    assert len(got) == len(expected)
    store.close()


def test_refresh_without_updates_is_noop(built):
    _, result = built
    with attach_store(result.store_path) as store:
        report = store.refresh()
        assert report.applied == 0 and not report.swapped
        assert store.pending_updates() == 0


def test_incremental_polls_see_only_new_batches(built):
    g, result = built
    journal = StoreJournal.for_store(result.store_path)
    dyn = DynamicEquiTruss(g, "afforest")
    dyn.publish_to(journal)
    store = attach_store(result.store_path)
    dyn.insert_edges([0], [50])
    assert store.refresh().applied == 1
    dyn.insert_edges([1], [60])
    dyn.insert_edges([2], [70])
    report = store.refresh()
    assert report.applied == 2 and report.generation == 4
    scratch = build_index(dyn.graph, "afforest").index
    assert np.array_equal(store.index.trussness, scratch.trussness)
    store.close()


def test_swap_triggers_reattach_and_engine_rebind(built):
    g, result = built
    journal = StoreJournal.for_store(result.store_path)
    dyn = _mutate(g, journal)
    store = attach_store(result.store_path)
    engine = store.engine()

    # rebuild absorbs the journal: new generation past every entry
    build_index(dyn.graph, "afforest", store_path=result.store_path,
                store_generation=journal.generation + 1)
    journal.reset(journal.generation + 1)

    assert store.is_stale()
    report = store.refresh()
    assert report.swapped and report.generation == 4
    assert store.components is not None  # re-attach restored stored tables
    scratch = build_index(dyn.graph, "afforest").index
    assert np.array_equal(store.index.trussness, scratch.trussness)
    expected = search_communities(scratch, 3, 3)
    got = engine.query(3, 3)
    assert len(got) == len(expected)
    store.close()


def test_stale_journal_epoch_raises(built):
    g, result = built
    journal = StoreJournal.for_store(result.store_path)
    # store swapped to generation 9; the old journal (epoch 1) is stale
    build_index(g, "afforest", store_path=result.store_path,
                store_generation=9)
    with pytest.raises(StaleStoreError, match="epoch"):
        StoreJournal.for_store(result.store_path)
    reader = JournalReader(journal.path, base_generation=9)
    with pytest.raises(StaleStoreError, match="re-attach"):
        reader.poll()
    # reset starts a fresh epoch and both sides work again
    journal.reset(9)
    assert StoreJournal.for_store(result.store_path).generation == 9
    assert JournalReader(journal.path, base_generation=9).poll() == []


def test_incomplete_trailing_line_is_deferred(built):
    g, result = built
    journal = StoreJournal.for_store(result.store_path)
    journal.append("insert", [0], [5])
    jpath = default_journal_path(result.store_path)
    with open(jpath, "a", encoding="utf-8") as f:
        f.write('{"generation": 3, "op": "insert", "u": [1], "v"')  # torn
    reader = JournalReader(jpath, base_generation=1)
    entries = reader.poll()
    assert [e.generation for e in entries] == [2]
    # writer finishes the line → next poll picks it up
    with open(jpath, "a", encoding="utf-8") as f:
        f.write(': [6], "unix": 0}\n')
    assert [e.generation for e in reader.poll()] == [3]


def test_generation_gap_is_corruption(built):
    _, result = built
    journal = StoreJournal.for_store(result.store_path)
    journal.append("insert", [0], [5])
    jpath = default_journal_path(result.store_path)
    with open(jpath, "a", encoding="utf-8") as f:
        f.write('{"generation": 7, "op": "insert", "u": [1], "v": [6]}\n')
    with pytest.raises(CorruptStoreError, match="gap"):
        JournalReader(jpath, base_generation=1).poll()


def test_journal_survives_paper_example(tmp_path):
    g = CSRGraph.from_edgelist(paper_example_graph())
    result = build_index(g, "afforest", store_path=tmp_path / "p.eqtsidx")
    journal = StoreJournal.for_store(result.store_path)
    dyn = DynamicEquiTruss(g, "afforest")
    dyn.publish_to(journal)
    dyn.insert_edges([1, 2], [9, 10])
    with attach_store(result.store_path) as store:
        assert store.refresh().applied == 1
        scratch = build_index(dyn.graph, "afforest").index
        assert np.array_equal(store.index.trussness, scratch.trussness)
        assert_same_communities(store.index, scratch,
                                range(g.num_vertices), ks=(3, 4, 5))
