"""Differential store correctness: write → attach is bit-identical.

Every index array that goes through the binary container must come back
byte for byte, on every construction variant, and the attached
:class:`QueryEngine` must answer exactly like the BFS reference over the
in-memory index. The attach path is also pinned as zero-copy: the
returned arrays are views into the mapping, not copies.
"""

import numpy as np
import pytest

from repro.community import search_communities
from repro.community.search import query_candidate_ks
from repro.equitruss.index import EquiTrussIndex
from repro.equitruss.pipeline import build_index
from repro.graph import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.graph.generators import (
    erdos_renyi_gnm,
    paper_example_graph,
    rmat_graph,
)
from repro.store import IndexStore, attach_store
from repro.store.format import REQUIRED_SECTIONS
from repro.store.reader import inspect_store, verify_store
from repro.store.writer import write_store

GRAPHS = {
    "er": lambda: erdos_renyi_gnm(300, 2600, seed=11),
    "rmat": lambda: rmat_graph(8, 8, seed=5),
    "paper": paper_example_graph,
}
VARIANTS = ("baseline", "coptimal", "afforest")

INDEX_ARRAYS = (
    "trussness",
    "edge_supernode",
    "supernode_trussness",
    "supernode_indptr",
    "supernode_edges",
    "superedges",
)


def _graph(name):
    return CSRGraph.from_edgelist(GRAPHS[name]())


def assert_index_identical(expected, got, context=None):
    for field in INDEX_ARRAYS:
        a, b = getattr(expected, field), getattr(got, field)
        assert a.dtype == b.dtype, (context, field)
        assert np.array_equal(a, b), (context, field)
    assert np.array_equal(expected.graph.edges.u, got.graph.edges.u), context
    assert np.array_equal(expected.graph.edges.v, got.graph.edges.v), context
    assert np.array_equal(expected.graph.indptr, got.graph.indptr), context
    assert np.array_equal(expected.graph.indices, got.graph.indices), context


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_write_attach_bit_identical(tmp_path, name, variant):
    g = _graph(name)
    result = build_index(g, variant, store_path=tmp_path / "g.eqtsidx")
    with attach_store(result.store_path, verify=True) as store:
        assert_index_identical(result.index, store.index, (name, variant))
        assert store.components is not None
        assert store.generation == 1


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_attached_engine_matches_bfs_reference(tmp_path, name):
    g = _graph(name)
    result = build_index(g, "afforest", store_path=tmp_path / "g.eqtsidx")
    with attach_store(result.store_path) as store:
        engine = store.engine()
        for q in range(0, g.num_vertices, 3):
            ks = [int(k) for k in query_candidate_ks(result.index, q).tolist()]
            for k in [k for k in ks if k >= 3] or [3]:
                expected = search_communities(result.index, q, k)
                got = engine.query(q, k)
                assert len(expected) == len(got), (name, q, k)
                for e, c in zip(expected, got):
                    assert e.k == c.k, (name, q, k)
                    assert np.array_equal(e.edge_ids, c.edge_ids), (name, q, k)


def test_attach_is_zero_copy(tmp_path):
    g = _graph("er")
    result = build_index(g, "afforest", store_path=tmp_path / "g.eqtsidx")
    store = attach_store(result.store_path)
    # every index array and graph array must be a view into the mapping
    for field in INDEX_ARRAYS:
        assert np.shares_memory(getattr(store.index, field), store._buf), field
        assert not getattr(store.index, field).flags.writeable, field
    for arr in (store.graph.indptr, store.graph.indices, store.graph.edge_ids,
                store.graph.edges.u, store.graph.edges.v):
        assert np.shares_memory(arr, store._buf)
    store.close()


def test_index_init_accepts_readonly_views_without_copy():
    """Satellite regression: EquiTrussIndex must not eagerly copy
    contiguous int64 input — attach feeds it read-only mmap views."""
    g = _graph("paper")
    base = build_index(g, "afforest").index
    backing = {}
    views = {}
    for field in INDEX_ARRAYS:
        arr = np.ascontiguousarray(getattr(base, field))
        arr.setflags(write=False)
        backing[field] = arr
        views[field] = arr.reshape(-1) if field == "superedges" else arr
    rebuilt = EquiTrussIndex(graph=g, **views)
    for field in INDEX_ARRAYS:
        assert np.shares_memory(getattr(rebuilt, field), backing[field]), field


def test_triangle_free_graph_roundtrip(tmp_path):
    # a path graph: no triangles, empty supernode universe
    u = np.arange(9, dtype=np.int64)
    v = u + 1
    g = CSRGraph.from_edgelist(EdgeList(u, v, 10))
    result = build_index(g, "afforest", store_path=tmp_path / "path.eqtsidx")
    assert result.index.num_supernodes == 0
    with attach_store(result.store_path, verify=True) as store:
        assert_index_identical(result.index, store.index)
        assert store.engine().query(0, 3) == []


def test_inspect_and_verify_report(tmp_path):
    g = _graph("rmat")
    result = build_index(g, "coptimal", store_path=tmp_path / "g.eqtsidx",
                         store_generation=7)
    info = inspect_store(result.store_path)
    assert info["generation"] == 7
    assert info["num_vertices"] == g.num_vertices
    assert info["num_edges"] == g.num_edges
    assert info["has_components"]
    assert set(REQUIRED_SECTIONS) <= set(info["sections"])
    assert info["schema_versions"]["store"] == 1
    report = verify_store(result.store_path)
    assert report["ok"] and report["generation"] == 7


def test_store_facade(tmp_path):
    g = _graph("paper")
    index = build_index(g, "afforest").index
    path = IndexStore.write(index, tmp_path / "g.eqtsidx")
    with IndexStore.attach(path) as store:
        assert_index_identical(index, store.index)
        assert store.components is None  # written without serving tables
        assert store.engine().query(10, 3)  # sweep fallback still works
    assert IndexStore.verify(path)["ok"]
    assert IndexStore.inspect(path)["generation"] == 1


def test_variants_write_identical_payloads(tmp_path):
    """All variants build the same canonical index → byte-identical
    sections (creation time/manifest differ, payload must not)."""
    from repro.store.reader import read_header

    g = _graph("er")
    digests = set()
    for variant in VARIANTS:
        result = build_index(g, variant)
        path = write_store(result.index, tmp_path / f"{variant}.eqtsidx",
                           manifest=False)
        header = read_header(path)
        digests.add(tuple(
            (name, meta["sha256"])
            for name, meta in sorted(header["sections"].items())
        ))
    assert len(digests) == 1


# ----------------------------------------------------------------------
# Cached Init artifact: the graph.edge_order section
# ----------------------------------------------------------------------

def test_store_carries_edge_order_and_rebuild_skips_sort(tmp_path):
    from repro.graph.csr import _from_edgelist_keyed
    from repro.store.format import EDGE_ORDER_SECTION

    g = _graph("er")
    result = build_index(g, "coptimal", store_path=tmp_path / "g.eqtsidx")
    info = inspect_store(result.store_path)
    assert info["has_edge_order"]
    assert EDGE_ORDER_SECTION in info["sections"]
    with attach_store(result.store_path, verify=True) as store:
        mapped = store.graph._edge_order
        assert mapped is not None and not mapped.flags.writeable
        expected = np.argsort(np.asarray(g.edges.v), kind="stable")
        assert np.array_equal(mapped, expected)
        # edge_sort_order() must serve the mapped section, not re-sort
        assert store.graph.edge_sort_order() is mapped
        rebuilt = store.rebuild_graph()
        ref = _from_edgelist_keyed(g.edges)
        assert np.array_equal(np.asarray(rebuilt.indptr), np.asarray(ref.indptr))
        assert np.array_equal(np.asarray(rebuilt.indices), np.asarray(ref.indices))
        assert np.array_equal(
            np.asarray(rebuilt.edge_ids), np.asarray(ref.edge_ids)
        )


def test_attach_tolerates_store_without_edge_order(tmp_path):
    """Stores written before (or without) the section attach fine and
    derive the permutation from the mapped CSR on demand."""
    from repro.store.writer import store_sections, write_store

    g = _graph("paper")
    index = build_index(g, "afforest").index
    sections = store_sections(index, edge_order=False)
    from repro.store.format import EDGE_ORDER_SECTION

    assert EDGE_ORDER_SECTION not in sections
    import repro.store.writer as writer_mod

    orig = writer_mod.store_sections
    writer_mod.store_sections = lambda idx, components=None: store_sections(
        idx, components, edge_order=False
    )
    try:
        write_store(index, tmp_path / "old.eqtsidx")
    finally:
        writer_mod.store_sections = orig
    info = inspect_store(tmp_path / "old.eqtsidx")
    assert not info["has_edge_order"]
    with attach_store(tmp_path / "old.eqtsidx", verify=True) as store:
        assert store.graph._edge_order is None
        expected = np.argsort(np.asarray(g.edges.v), kind="stable")
        assert np.array_equal(store.graph.edge_sort_order(), expected)
        rebuilt = store.rebuild_graph()
        assert np.array_equal(
            np.asarray(rebuilt.indptr), np.asarray(store.graph.indptr)
        )
