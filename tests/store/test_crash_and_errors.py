"""Crash atomicity + typed failure modes of the store.

A writer killed at any point — an exception between section writes or a
hard ``os._exit`` mid-write in a child process — must leave the old
readable generation untouched and no torn store. Corruption (flipped
payload bytes, truncation, foreign files) must surface as
:class:`CorruptStoreError`, never as garbage arrays; mismatched inputs
as :class:`StoreError`. Teardown is ordered: mappings registered with
an :class:`ExecutionContext` are released before the backend closes.
"""

import os
import sys
import subprocess

import numpy as np
import pytest

import repro.store.writer as writer_mod
from repro.equitruss.pipeline import build_index
from repro.errors import CorruptStoreError, StaleStoreError, StoreError
from repro.graph import CSRGraph
from repro.graph.generators import erdos_renyi_gnm, rmat_graph
from repro.parallel.context import ExecutionContext
from repro.store import attach_store
from repro.store.format import STORE_MAGIC
from repro.store.reader import read_header, verify_store
from repro.store.writer import write_store


@pytest.fixture
def built(tmp_path):
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(150, 1000, seed=2))
    result = build_index(g, "afforest", store_path=tmp_path / "g.eqtsidx")
    return g, result


def _tmp_litter(path):
    return [p for p in path.parent.iterdir() if ".tmp-" in p.name]


class _Boom(RuntimeError):
    pass


@pytest.mark.parametrize(
    "die_at", ["graph.u", "index.trussness", "serve.levels"]
)
def test_writer_exception_mid_write_preserves_old_store(built, die_at):
    g, result = built
    path = result.store_path
    before = path.read_bytes()

    def interceptor(section):
        if section == die_at:
            raise _Boom(section)

    writer_mod._write_interceptor = interceptor
    try:
        with pytest.raises(_Boom):
            build_index(g, "afforest", store_path=path, store_generation=2)
    finally:
        writer_mod._write_interceptor = None
    assert path.read_bytes() == before
    assert not _tmp_litter(path)
    with attach_store(path, verify=True) as store:
        assert store.generation == 1


_KILL_SCRIPT = """
import os, sys
sys.path.insert(0, {src!r})
import repro.store.writer as writer_mod
from repro.equitruss.pipeline import build_index
from repro.graph import CSRGraph
from repro.graph.generators import erdos_renyi_gnm

g = CSRGraph.from_edgelist(erdos_renyi_gnm(150, 1000, seed=2))
result = build_index(g, "afforest")

def die(section):
    if section == "index.supernode_edges":
        os._exit(42)  # simulate SIGKILL mid-write: no cleanup, no flush

writer_mod._write_interceptor = die
writer_mod.write_store(result.index, {path!r}, generation=5)
os._exit(0)
"""


def test_writer_hard_killed_mid_write_old_generation_attaches(built):
    g, result = built
    path = result.store_path
    before = path.read_bytes()
    src = os.path.join(os.path.dirname(writer_mod.__file__), "..", "..")
    proc = subprocess.run(
        [sys.executable, "-c",
         _KILL_SCRIPT.format(src=os.path.abspath(src), path=str(path))],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 42, proc.stderr
    # the kill leaves a tmp file (no cleanup ran) but never a torn store
    assert path.read_bytes() == before
    with attach_store(path, verify=True) as store:
        assert store.generation == 1
        assert store.engine().query(0, 3) is not None
    assert verify_store(path)["ok"]


def test_flipped_payload_byte_is_detected(built):
    _, result = built
    path = result.store_path
    blob = bytearray(path.read_bytes())
    blob[-100] ^= 0xFF  # flip one payload byte near the tail
    path.write_bytes(bytes(blob))
    with pytest.raises(CorruptStoreError, match="checksum mismatch"):
        attach_store(path, verify=True)
    with pytest.raises(CorruptStoreError):
        verify_store(path)
    # unverified attach maps fine — verification is what detects rot
    attach_store(path).close()


def test_truncated_file_is_detected(built):
    _, result = built
    path = result.store_path
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) - 257])
    with pytest.raises(CorruptStoreError, match="truncated"):
        attach_store(path)


def test_foreign_and_garbage_files_are_rejected(tmp_path):
    bad_magic = tmp_path / "notastore"
    bad_magic.write_bytes(b"NOTASTOR" + b"\x00" * 64)
    with pytest.raises(CorruptStoreError, match="bad magic"):
        read_header(bad_magic)
    short = tmp_path / "short"
    short.write_bytes(STORE_MAGIC[:4])
    with pytest.raises(CorruptStoreError, match="too short"):
        read_header(short)
    missing = tmp_path / "missing"
    with pytest.raises(StoreError):
        attach_store(missing)


def test_unsupported_format_version_is_rejected(built):
    _, result = built
    path = result.store_path
    blob = bytearray(path.read_bytes())
    blob[8] = 99  # format-version field of the prelude
    path.write_bytes(bytes(blob))
    with pytest.raises(CorruptStoreError, match="version"):
        attach_store(path)


def test_expect_graph_mismatch_raises_typed_error(built, tmp_path):
    _, result = built
    other = CSRGraph.from_edgelist(rmat_graph(6, 6, seed=9))
    with pytest.raises(StoreError, match="fingerprint"):
        attach_store(result.store_path, expect_graph=other)
    # matching graph passes
    attach_store(result.store_path, expect_graph=result.index.graph).close()


def test_error_taxonomy():
    assert issubclass(CorruptStoreError, StoreError)
    assert issubclass(StaleStoreError, StoreError)
    from repro.errors import ReproError

    assert issubclass(StoreError, ReproError)


def test_ctx_close_releases_mapping_before_backend(built):
    _, result = built
    ctx = ExecutionContext(backend="thread", num_workers=2)
    store = attach_store(result.store_path, ctx=ctx)
    assert not store.closed
    ctx.close()  # closers run before backend teardown
    assert store.closed
    # double close is a no-op; a fresh attach still works
    store.close()
    attach_store(result.store_path).close()


def test_closed_store_refuses_refresh(built):
    _, result = built
    store = attach_store(result.store_path)
    store.close()
    with pytest.raises(StoreError, match="closed"):
        store.refresh()
