"""Concurrency regression: journal appends racing reader replay.

A writer thread publishes insert/remove batches through
``DynamicEquiTruss.publish_to`` while reader threads (each with its own
:func:`attach_store` view and a cached engine) loop
``refresh(); query()``. The attached index only moves at refresh
points and refresh applies whole journal entries, so the contract is:
**every recorded answer matches the index at the generation the store
reported** — i.e. always a pre- or post-batch state, never a torn
in-between one, and never a stale cache entry from a previous
generation.

The per-generation oracle is rebuilt after the fact by replaying the
same journal one entry at a time on a fresh dynamic index (the
replay-equals-rebuild equivalence itself is pinned in
``test_journal.py``).
"""

import threading
import time

import numpy as np

from repro.equitruss.dynamic import DynamicEquiTruss
from repro.equitruss.pipeline import build_index
from repro.graph import CSRGraph
from repro.graph.generators import erdos_renyi_gnm
from repro.serve.protocol import serialize_communities
from repro.store import attach_store
from repro.store.journal import JournalReader, StoreJournal, default_journal_path

PROBES = ((0, 3), (5, 3), (17, 3), (33, 4), (64, 4), (101, 3))
BATCHES = 8


def _answers(engine_like, probes):
    """(vertex, k) → wire-shape communities via any ``query`` callable."""
    return {
        (v, k): serialize_communities(engine_like(v, k)) for v, k in probes
    }


def test_refresh_races_journal_appends_but_answers_stay_consistent(tmp_path):
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(120, 700, seed=3))
    store_path = tmp_path / "g.eqtsidx"
    build_index(g, "afforest", store_path=store_path)

    stop = threading.Event()
    records = []  # (generation, vertex, k, communities)
    records_lock = threading.Lock()
    errors = []

    def writer():
        try:
            journal = StoreJournal.for_store(store_path)
            dyn = DynamicEquiTruss(g, "afforest")
            dyn.publish_to(journal)
            rng = np.random.default_rng(7)
            for i in range(BATCHES):
                if i % 3 == 2:
                    take = rng.integers(0, g.num_edges, size=2)
                    dyn.remove_edges(
                        g.edges.u[take].copy(), g.edges.v[take].copy()
                    )
                else:
                    us = rng.integers(0, g.num_vertices, size=4)
                    vs = rng.integers(0, g.num_vertices, size=4)
                    keep = us != vs
                    dyn.insert_edges(us[keep], vs[keep])
                time.sleep(0.01)
        except BaseException as exc:
            errors.append(exc)
        finally:
            stop.set()

    def reader(seed):
        try:
            with attach_store(store_path) as store:
                # cached engine: refresh must also invalidate results
                engine = store.engine(cache_size=64)
                while True:
                    done = stop.is_set()
                    store.refresh()
                    generation = store.generation
                    for vertex, k in PROBES[seed % 2::2]:
                        got = serialize_communities(
                            engine.query(vertex, k, record=False)
                        )
                        with records_lock:
                            records.append((generation, vertex, k, got))
                    if done and store.pending_updates() == 0:
                        return
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(i,)) for i in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
        assert not t.is_alive(), "refresh/append race wedged a thread"
    assert not errors, errors

    # ---- sequential per-generation oracle from the same journal
    base = 1
    entries = JournalReader(
        default_journal_path(store_path), base_generation=base,
        seen_generation=base,
    ).poll()
    assert len(entries) == BATCHES
    oracle_dyn = DynamicEquiTruss(g, "afforest")
    from repro.community import search_communities

    oracles = {
        base: _answers(
            lambda v, k: search_communities(oracle_dyn.index, v, k), PROBES
        )
    }
    for entry in entries:
        if entry.op == "insert":
            oracle_dyn.insert_edges(entry.u, entry.v)
        else:
            oracle_dyn.remove_edges(entry.u, entry.v)
        oracles[entry.generation] = _answers(
            lambda v, k: search_communities(oracle_dyn.index, v, k), PROBES
        )

    assert records
    generations_seen = {gen for gen, _, _, _ in records}
    assert generations_seen <= set(oracles)
    # readers converged on the fully-applied journal
    assert max(generations_seen) == base + BATCHES
    for generation, vertex, k, got in records:
        assert got == oracles[generation][(vertex, k)], (
            generation, vertex, k
        )
