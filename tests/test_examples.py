"""Smoke tests: every example script runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "5 supernodes, 6 superedges" in out
    assert "round-tripped" in out


def test_social_community_search():
    out = run_example("social_community_search.py", "--users", "3")
    assert "index built" in out
    assert "overlapping communit" in out


def test_protein_complex_detection():
    out = run_example("protein_complex_detection.py")
    assert "recovered" in out
    assert "verified against index-free" in out
    # the planted complexes are genuinely recoverable
    line = [l for l in out.splitlines() if l.startswith("recovered")][0]
    got = int(line.split()[1].split("/")[0])
    assert got >= 6


def test_dynamic_social_updates():
    out = run_example("dynamic_social_updates.py", "--steps", "4")
    assert "verified equal to a from-scratch rebuild" in out
    assert "affected" in out


def test_distributed_scaleout():
    out = run_example("distributed_scaleout.py", "--dataset", "amazon")
    assert "SPMD emulator" in out
    assert "False" not in out  # every rank count verified correct


def test_index_pipeline_scaling():
    out = run_example("index_pipeline_scaling.py", "--dataset", "amazon")
    assert "Per-kernel breakdown" in out
    assert "128-thread modeled speedups" in out


def test_public_api_surface():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
