"""Cache invalidation under dynamic index updates.

The contract: after any ``DynamicEquiTruss`` edge update, an attached
engine must never serve an answer derived from the pre-update index —
hit, then invalidate, then miss — and post-update answers must match a
from-scratch rebuild of the index on the updated graph.
"""

import numpy as np

from repro.community import search_communities
from repro.community.search import query_candidate_ks
from repro.equitruss import DynamicEquiTruss, build_index
from repro.graph import CSRGraph
from repro.graph.generators import complete_graph, erdos_renyi_gnm
from repro.serve import QueryEngine


def assert_identical(expected, got):
    assert len(expected) == len(got)
    for exp, g in zip(expected, got):
        assert exp.k == g.k and np.array_equal(exp.edge_ids, g.edge_ids)


def test_hit_then_invalidate_then_miss():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(24, 110, seed=4))
    dyn = DynamicEquiTruss(g)
    engine = QueryEngine.attach(dyn)

    engine.query(0, 3)
    assert engine.cache.misses == 1 and engine.cache.hits == 0
    engine.query(0, 3)
    assert engine.cache.hits == 1  # hit

    dyn.insert_edges([0, 0, 1], [1, 2, 2])  # invalidate (forms a triangle at 0)
    assert len(engine.cache) == 0
    assert engine.cache.invalidations >= 1

    hits_before = engine.cache.hits
    engine.query(0, 3)
    assert engine.cache.hits == hits_before  # miss: recomputed, not served stale


def test_no_stale_results_after_insert():
    # K4 plus an isolated-ish vertex; inserting edges promotes trussness
    g = CSRGraph.from_edgelist(complete_graph(4))
    dyn = DynamicEquiTruss(g)
    engine = QueryEngine.attach(dyn)
    (before,) = engine.query(0, 4)
    assert before.num_edges == 6

    # densify to K5: the k=4 community must now include vertex 4's edges
    dyn.insert_edges([0, 1, 2, 3], [4, 4, 4, 4])
    (after,) = engine.query(0, 4)
    assert after.num_edges == 10
    assert 4 in after.vertices().tolist()


def test_post_update_answers_match_fresh_rebuild():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(28, 130, seed=6))
    dyn = DynamicEquiTruss(g)
    engine = QueryEngine.attach(dyn)
    for q in range(0, 28, 5):
        engine.query(q, 3)  # populate the cache pre-update

    dyn.insert_edges([0, 1, 2, 5], [9, 9, 9, 9])
    dyn.remove_edges(dyn.graph.edges.u[:2], dyn.graph.edges.v[:2])

    fresh = build_index(dyn.graph, "afforest").index
    assert fresh == dyn.index
    for q in range(dyn.graph.num_vertices):
        for k in query_candidate_ks(fresh, q).tolist():
            assert_identical(
                search_communities(fresh, q, int(k)), engine.query(q, int(k))
            )


def test_refresh_and_invalidate_without_dynamic():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(20, 90, seed=8))
    index = build_index(g, "afforest").index
    engine = QueryEngine(index)
    r1 = engine.query(0, 3)
    engine.invalidate()  # result cache only; components stay
    assert len(engine.cache) == 0
    assert_identical(r1, engine.query(0, 3))

    g2 = CSRGraph.from_edgelist(erdos_renyi_gnm(20, 95, seed=9))
    index2 = build_index(g2, "afforest").index
    engine.refresh(index2)  # full rebind
    assert engine.index is index2
    for q in range(20):
        assert_identical(search_communities(index2, q, 3), engine.query(q, 3))


def test_multiple_attached_engines_all_invalidated():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(22, 100, seed=3))
    dyn = DynamicEquiTruss(g)
    engines = [QueryEngine.attach(dyn) for _ in range(3)]
    for e in engines:
        e.query(1, 3)
    dyn.insert_edges([0], [1])
    for e in engines:
        assert len(e.cache) == 0
        assert e.index is dyn.index
