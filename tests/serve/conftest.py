"""Shared fixtures for the network-serving test suites.

One persisted store per (small) graph, built once per session, plus a
helper that boots a :class:`~repro.serve.frontend.FrontendThread` over
it. The frontend spawns real shard subprocesses, so the graphs here are
deliberately tiny — the differential suites still enumerate every
(vertex, k) pair over the wire.
"""

import pytest

from repro.equitruss.pipeline import build_index
from repro.graph import CSRGraph
from repro.graph.generators import (
    erdos_renyi_gnm,
    paper_example_graph,
    rmat_graph,
)

SERVE_GRAPHS = {
    "er": lambda: erdos_renyi_gnm(40, 220, seed=3),
    "rmat": lambda: rmat_graph(5, 8, seed=5),
    "paper": paper_example_graph,
}


@pytest.fixture(scope="session")
def served_store(tmp_path_factory):
    """``name -> (graph, index, store_path)``, built lazily, cached."""
    root = tmp_path_factory.mktemp("serve_stores")
    built = {}

    def _get(name):
        if name not in built:
            graph = CSRGraph.from_edgelist(SERVE_GRAPHS[name]())
            path = root / f"{name}.eqtsidx"
            result = build_index(graph, "afforest", store_path=path)
            built[name] = (graph, result.index, path)
        return built[name]

    return _get
