"""Live event-loop stall detection through a real FrontendThread.

``REPRO_LOOP_CHECK`` turns the serving loop's watchdog on; a seeded
100 ms synchronous callback must be caught (and, in strict mode, fail
the thread's shutdown), while a normal query workload stays silent.
"""

import time

import pytest

from repro.errors import LoopStallError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.serve import ServeClient
from repro.serve.frontend import (
    LOOP_STALL_METRIC,
    FrontendConfig,
    FrontendThread,
)


def seed_stall(server, watchdog, seconds=0.1, timeout=10.0):
    """Run one blocking callback on the live loop, wait for the record."""
    server._loop.call_soon_threadsafe(lambda: time.sleep(seconds))
    deadline = time.monotonic() + timeout
    while not watchdog.stalls and time.monotonic() < deadline:
        time.sleep(0.01)
    return watchdog.stalls


def test_seeded_blocking_callback_fails_strict_shutdown(
    served_store, monkeypatch
):
    monkeypatch.setenv("REPRO_LOOP_CHECK", "strict")
    monkeypatch.setenv("REPRO_LOOP_THRESHOLD_MS", "50")
    _, _, store_path = served_store("paper")
    server = FrontendThread(
        FrontendConfig(store_path=store_path, num_shards=1)
    ).start()
    watchdog = server.loop_watchdog
    assert watchdog is not None and watchdog.strict
    stalls = seed_stall(server, watchdog, seconds=0.1)
    assert stalls, "100 ms callback was not recorded"
    assert stalls[0].elapsed_ms >= 50.0
    with pytest.raises(LoopStallError, match="stalled"):
        server.stop()


def test_record_mode_observes_metric_without_failing(
    served_store, monkeypatch
):
    monkeypatch.setenv("REPRO_LOOP_CHECK", "1")
    monkeypatch.setenv("REPRO_LOOP_THRESHOLD_MS", "50")
    _, _, store_path = served_store("paper")
    registry = MetricsRegistry()
    with use_registry(registry):
        with FrontendThread(
            FrontendConfig(store_path=store_path, num_shards=1)
        ) as server:
            watchdog = server.loop_watchdog
            assert watchdog is not None and not watchdog.strict
            assert seed_stall(server, watchdog, seconds=0.1)
        # __exit__ returned: record mode never raises
    assert registry.as_dict()[LOOP_STALL_METRIC]["count"] >= 1


def test_clean_serving_workload_stays_silent(served_store, monkeypatch):
    """Real queries over the wire never hold the loop past the
    threshold — the serving path is genuinely non-blocking."""
    from tests.serve.test_engine_differential import every_pair

    monkeypatch.setenv("REPRO_LOOP_CHECK", "strict")
    _, index, store_path = served_store("paper")
    pairs = sorted(set(every_pair(index)))
    with FrontendThread(
        FrontendConfig(store_path=store_path, num_shards=2)
    ) as server:
        watchdog = server.loop_watchdog
        assert watchdog is not None
        with ServeClient(server.host, server.port) as client:
            responses = client.query_pipeline(pairs)
        assert all(r.get("ok") for r in responses.values())
        assert watchdog.stalls == []
    # __exit__ ran watchdog.check() in strict mode without raising


def test_watchdog_absent_when_env_unset(served_store, monkeypatch):
    monkeypatch.delenv("REPRO_LOOP_CHECK", raising=False)
    _, _, store_path = served_store("paper")
    with FrontendThread(
        FrontendConfig(store_path=store_path, num_shards=1)
    ) as server:
        assert server.loop_watchdog is None
