"""Differential serving correctness: the wire vs the in-process engine.

Every (vertex, k) pair of each test graph goes through a *live*
frontend — real TCP, real coalescing, real shard subprocesses
mmap-attaching the store — and must come back bit-identical to an
in-process :class:`~repro.serve.engine.QueryEngine` over the same
index, at 1, 2, and 4 shards. Since :func:`every_pair` includes the
above-kmax probes, empty answers are pinned too.

Cross-partition anchors are asserted, not hoped for: the suite checks
that at least one answered community spans vertices owned by different
shards, so the "every shard maps the full store" routing claim is
actually exercised.
"""

import numpy as np
import pytest

from repro.distributed.partition import VertexOwnership
from repro.serve import QueryEngine, ServeClient
from repro.serve.frontend import FrontendConfig, FrontendThread
from repro.serve.protocol import serialize_communities
from tests.serve.test_engine_differential import every_pair

GRAPH_NAMES = ("er", "rmat", "paper")
SHARD_COUNTS = (1, 2, 4)


def wire_answers(host, port, pairs):
    """All ``pairs`` through one pipelined connection; (v, k) → communities."""
    with ServeClient(host, port) as client:
        responses = client.query_pipeline(pairs)
    answers = {}
    for rid, resp in responses.items():
        assert resp.get("ok"), resp
        answers[(resp["vertex"], resp["k"])] = resp["communities"]
    assert len(answers) == len(set(pairs))
    return answers


def community_spans_shards(graph, community, ownership):
    edge_ids = np.asarray(community["edge_ids"], dtype=np.int64)
    vertices = np.union1d(graph.edges.u[edge_ids], graph.edges.v[edge_ids])
    return len({int(ownership.owner_of(int(v))) for v in vertices}) > 1


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("name", GRAPH_NAMES)
def test_every_pair_bit_identical_over_the_wire(served_store, name, shards):
    graph, index, store_path = served_store(name)
    engine = QueryEngine(index, cache_size=0)
    pairs = sorted(set(every_pair(index)))
    expected = {
        (v, k): serialize_communities(engine.query(v, k, record=False))
        for v, k in pairs
    }
    config = FrontendConfig(store_path=store_path, num_shards=shards)
    with FrontendThread(config) as server:
        got = wire_answers(server.host, server.port, pairs)
    mismatched = [pair for pair in pairs if got[pair] != expected[pair]]
    assert not mismatched, (name, shards, mismatched[:5])


@pytest.mark.parametrize("shards", (2, 4))
def test_communities_cross_partition_boundaries(served_store, shards):
    """Sharded answers include communities spanning ownership blocks."""
    graph, index, store_path = served_store("er")
    ownership = VertexOwnership(graph.num_vertices, shards)
    engine = QueryEngine(index, cache_size=0)
    pairs = sorted(set(every_pair(index)))
    config = FrontendConfig(store_path=store_path, num_shards=shards)
    with FrontendThread(config) as server:
        got = wire_answers(server.host, server.port, pairs)
    crossing = sum(
        community_spans_shards(graph, community, ownership)
        for answer in got.values()
        for community in answer
    )
    assert crossing > 0, "test graph has no cross-partition community"
    # ... and those answers matched the in-process engine bit for bit
    for v, k in pairs:
        assert got[(v, k)] == serialize_communities(
            engine.query(v, k, record=False)
        ), (v, k)


def test_frontend_routing_matches_vertex_ownership(served_store):
    """The frontend's scalar owner function == VertexOwnership.owner_of."""
    from repro.serve.frontend import ServingFrontend

    graph, _, store_path = served_store("er")
    for shards in (1, 2, 3, 4, 7):
        frontend = ServingFrontend(
            FrontendConfig(store_path=store_path, num_shards=shards)
        )
        ownership = VertexOwnership(graph.num_vertices, shards)
        for v in range(graph.num_vertices):
            assert frontend._owner(v) == ownership.owner_of(v), (shards, v)


def test_invalid_queries_get_typed_errors(served_store):
    _, _, store_path = served_store("paper")
    config = FrontendConfig(store_path=store_path, num_shards=1)
    with FrontendThread(config) as server, ServeClient(
        server.host, server.port
    ) as client:
        for fields, expect in (
            ({"vertex": -1, "k": 3}, "invalid_parameter"),
            ({"vertex": 10**9, "k": 3}, "invalid_parameter"),
            ({"vertex": 0, "k": 2}, "invalid_parameter"),
            # malformed types are wire-protocol errors, not bad parameters
            ({"vertex": 0.5, "k": 3}, "protocol"),
            ({"vertex": True, "k": 3}, "protocol"),
            ({"k": 3}, "protocol"),
        ):
            rid = client.send("query", **fields)
            resp = client.recv()
            assert resp["id"] == rid
            assert not resp["ok"]
            assert resp["error"]["type"] == expect, fields
        rid = client.send("nonsense-op")
        resp = client.recv()
        assert resp["id"] == rid and resp["error"]["type"] == "protocol"
        assert client.ping()["pong"] is True  # connection still healthy
