"""Property/fuzz tests for the frontend's request coalescing.

Randomized concurrent schedules — many pipelined client connections,
jittered send times, some connections dropped mid-flight — against one
live frontend, with the invariants that must survive any interleaving:

* every surviving client receives **exactly** the response ids it sent
  (no drops, no duplicates, no leaks of another client's responses);
* every response is bit-identical to the in-process engine's answer
  for that (vertex, k), regardless of which coalesced batch carried it;
* no coalesced batch ever exceeds ``max_batch`` (read back from the
  ``coalesce_batch_size`` histogram of an isolated metrics registry);
* a lone request is bounded by the coalescing window, not starved
  behind traffic that never comes.

Client disconnects model cancellation: the frontend still runs those
batches (shards answer), but the responses have nowhere to go and must
not corrupt other connections or wedge the server.
"""

import random
import threading
import time

import pytest

from repro.errors import ServeError
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.serve import QueryEngine, ServeClient
from repro.serve.frontend import FrontendConfig, FrontendThread
from repro.serve.protocol import serialize_communities

CLIENTS = 6
QUERIES_PER_CLIENT = 40
KS = (3, 4, 5)
MAX_BATCH = 8


def oracle_for(index):
    engine = QueryEngine(index, cache_size=0)
    cache = {}

    def lookup(vertex, k):
        if (vertex, k) not in cache:
            cache[(vertex, k)] = serialize_communities(
                engine.query(vertex, k, record=False)
            )
        return cache[(vertex, k)]

    return lookup


class FuzzClient(threading.Thread):
    """One pipelined connection with a jittered, seeded send schedule."""

    def __init__(self, host, port, cid, seed, num_vertices, drop_after=None):
        super().__init__(daemon=True)
        self.host, self.port, self.cid = host, port, cid
        self.rng = random.Random(seed)
        self.num_vertices = num_vertices
        self.drop_after = drop_after  # send this many, then vanish
        self.sent: dict = {}  # id -> (vertex, k)
        self.received: dict = {}  # id -> response frame
        self.error = None

    def run(self):
        try:
            self._run()
        except BaseException as exc:  # surfaced by the test body
            self.error = exc

    def _run(self):
        client = ServeClient(self.host, self.port, timeout=60.0)
        try:
            budget = (
                self.drop_after
                if self.drop_after is not None
                else QUERIES_PER_CLIENT
            )
            for i in range(budget):
                vertex = self.rng.randrange(self.num_vertices)
                k = self.rng.choice(KS)
                rid = f"c{self.cid}-{i}"
                client.send("query", req_id=rid, vertex=vertex, k=k)
                self.sent[rid] = (vertex, k)
                if self.rng.random() < 0.3:
                    time.sleep(self.rng.random() * 0.005)
            if self.drop_after is not None:
                return  # disconnect with responses still in flight
            while len(self.received) < len(self.sent):
                resp = client.recv()
                rid = resp.get("id")
                assert rid in self.sent, f"leaked foreign response id {rid!r}"
                assert rid not in self.received, f"duplicate response {rid!r}"
                self.received[rid] = resp
            # nothing further may arrive once every id is answered
            client._sock.settimeout(0.2)
            try:
                extra = client.recv()
            except (TimeoutError, OSError, ServeError):
                extra = None
            assert extra is None, f"unsolicited extra frame {extra!r}"
        finally:
            client.close()


@pytest.mark.parametrize("seed", (0, 1, 2))
def test_fuzz_concurrent_schedules_no_loss_no_dup_no_leak(served_store, seed):
    graph, index, store_path = served_store("er")
    oracle = oracle_for(index)
    registry = MetricsRegistry()
    config = FrontendConfig(
        store_path=store_path, num_shards=2, window_ms=10.0,
        max_batch=MAX_BATCH, max_pending=4096,
    )
    with use_registry(registry), FrontendThread(config) as server:
        droppers = {1, 4} if seed % 2 else {0}
        clients = [
            FuzzClient(
                server.host, server.port, cid, seed * 977 + cid,
                graph.num_vertices,
                drop_after=QUERIES_PER_CLIENT // 2 if cid in droppers else None,
            )
            for cid in range(CLIENTS)
        ]
        for c in clients:
            c.start()
        for c in clients:
            c.join(timeout=120)
            assert not c.is_alive(), f"client {c.cid} wedged"
        for c in clients:
            if c.error is not None:
                raise c.error
        # the frontend survived the disconnects and still answers
        with ServeClient(server.host, server.port) as probe:
            assert probe.ping()["pong"] is True
    for c in clients:
        if c.drop_after is not None:
            continue
        assert set(c.received) == set(c.sent), c.cid
        for rid, resp in c.received.items():
            assert resp["ok"], (c.cid, rid, resp)
            vertex, k = c.sent[rid]
            assert resp["vertex"] == vertex and resp["k"] == k
            assert resp["communities"] == oracle(vertex, k), (c.cid, rid)
    hist = registry.as_dict().get("repro.serve.frontend.coalesce_batch_size")
    assert hist is not None and hist["count"] > 0
    assert hist["max"] <= MAX_BATCH
    # coalescing actually coalesced: fewer batches than admitted requests
    answered = registry.as_dict()["repro.serve.frontend.requests"]
    assert hist["count"] < answered


def test_lone_request_bounded_by_window(served_store):
    """An isolated query flushes on the window timer, not max_batch."""
    _, index, store_path = served_store("paper")
    oracle = oracle_for(index)
    config = FrontendConfig(
        store_path=store_path, num_shards=1, window_ms=25.0, max_batch=1024,
    )
    with FrontendThread(config) as server, ServeClient(
        server.host, server.port, timeout=30.0
    ) as client:
        for vertex in (0, 3, 7):
            t0 = time.perf_counter()
            answer = client.query(vertex, 3)
            elapsed = time.perf_counter() - t0
            assert answer == oracle(vertex, 3)
            # window (25 ms) + shard round trip, with CI headroom; the
            # point is it does not wait for 1023 peers that never come
            assert elapsed < 5.0


def test_same_k_same_window_rides_one_batch(served_store):
    """Concurrent same-k queries coalesce into a single shard batch."""
    graph, _, store_path = served_store("er")
    registry = MetricsRegistry()
    config = FrontendConfig(
        store_path=store_path, num_shards=1, window_ms=50.0, max_batch=64,
    )
    with use_registry(registry), FrontendThread(config) as server:
        with ServeClient(server.host, server.port) as client:
            pairs = [(v, 3) for v in range(16)]
            responses = client.query_pipeline(pairs)
            assert len(responses) == len(pairs)
            assert all(r["ok"] for r in responses.values())
    hist = registry.as_dict()["repro.serve.frontend.coalesce_batch_size"]
    assert hist["max"] >= 2, "no coalescing happened inside one window"
