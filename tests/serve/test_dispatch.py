"""Concurrent dispatcher: identical results on every backend."""

import numpy as np

from repro.community import search_communities
from repro.equitruss import build_index
from repro.graph import CSRGraph
from repro.graph.generators import erdos_renyi_gnm
from repro.parallel.context import ExecutionContext
from repro.serve import QueryDispatcher, QueryEngine


def reference(index, requests):
    return [search_communities(index, v, k) for v, k in requests]


def assert_all_identical(expected, got):
    assert len(expected) == len(got)
    for exp_list, got_list in zip(expected, got):
        assert len(exp_list) == len(got_list)
        for e, g in zip(exp_list, got_list):
            assert e.k == g.k and np.array_equal(e.edge_ids, g.edge_ids)


def make_requests(g, ks=(3, 4, 5)):
    return [(v, k) for v in range(0, g.num_vertices, 2) for k in ks]


def test_serial_dispatch_matches_bfs():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(36, 180, seed=12))
    index = build_index(g, "afforest").index
    engine = QueryEngine(index)
    requests = make_requests(g)
    results = QueryDispatcher(engine).run(requests)
    assert_all_identical(reference(index, requests), results)


def test_threaded_dispatch_matches_serial():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(36, 180, seed=13))
    index = build_index(g, "afforest").index
    requests = make_requests(g)
    expected = reference(index, requests)
    for workers in (2, 4):
        ctx = ExecutionContext(backend="thread", num_workers=workers)
        engine = QueryEngine(index, ctx=ctx)
        assert_all_identical(expected, QueryDispatcher(engine).run(requests))


def test_dispatch_mixed_ks_and_repeats_hit_cache():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(30, 150, seed=14))
    index = build_index(g, "afforest").index
    engine = QueryEngine(index)
    requests = make_requests(g)
    dispatcher = QueryDispatcher(engine)
    expected = reference(index, requests)
    assert_all_identical(expected, dispatcher.run(requests))
    assert engine.cache.hits == 0
    # repeat traffic: the second pass is served entirely from the LRU
    assert_all_identical(expected, dispatcher.run(requests))
    assert engine.cache.hits == len(requests)


def test_empty_batch():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(10, 20, seed=0))
    index = build_index(g, "afforest").index
    assert QueryDispatcher(QueryEngine(index)).run([]) == []


def test_dispatch_emits_serve_batch_span():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(20, 90, seed=1))
    index = build_index(g, "afforest").index
    ctx = ExecutionContext()
    engine = QueryEngine(index, ctx=ctx)
    QueryDispatcher(engine).run([(0, 3), (1, 3)])
    names = [sp.name for sp, _ in ctx.tracer.walk()]
    assert "ServeBatch" in names
    assert "PrecomputeComponents" in names
