"""Differential correctness: QueryEngine vs the BFS reference.

Every fast path the serving layer adds — component lookups, the batch
gather, the LRU cache, warmed materialization — must return communities
*identical* (same k, same sorted edge ids, same count, same order) to
``search_communities`` for every (vertex, k) pair, on every
index-construction variant. The paper's Figure 3 example is pinned as
an exact golden case.
"""

import numpy as np
import pytest

from repro.community import search_communities
from repro.community.search import query_candidate_ks
from repro.equitruss import VARIANTS, build_index
from repro.errors import InvalidParameterError
from repro.graph import CSRGraph
from repro.graph.generators import (
    PAPER_EXAMPLE_SUPERNODES,
    barabasi_albert_graph,
    erdos_renyi_gnm,
    paper_example_graph,
)
from repro.serve import QueryEngine


def assert_identical(expected, got, context=None):
    """Same count, same ks, same sorted edge ids, same canonical order."""
    assert len(expected) == len(got), (context, len(expected), len(got))
    for exp, g in zip(expected, got):
        assert exp.k == g.k, context
        assert np.array_equal(exp.edge_ids, g.edge_ids), context


def every_pair(index):
    """All (vertex, k) pairs with k ranging over the vertex's candidate
    trussness levels, plus one k above them (the must-be-empty probe)."""
    for q in range(index.graph.num_vertices):
        ks = [int(k) for k in query_candidate_ks(index, q).tolist()]
        probe = max(ks, default=2) + 1
        for k in ks + [probe]:
            if k >= 3:
                yield q, k


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_er_graphs_all_pairs_all_variants(variant):
    for seed in range(3):
        g = CSRGraph.from_edgelist(erdos_renyi_gnm(32, 150, seed=seed))
        index = build_index(g, variant).index
        engine = QueryEngine(index)
        for q, k in every_pair(index):
            assert_identical(
                search_communities(index, q, k),
                engine.query(q, k),
                (variant, seed, q, k),
            )


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_powerlaw_graphs_all_pairs_all_variants(variant):
    g = CSRGraph.from_edgelist(barabasi_albert_graph(45, 5, seed=7))
    index = build_index(g, variant).index
    engine = QueryEngine(index)
    for q, k in every_pair(index):
        assert_identical(
            search_communities(index, q, k),
            engine.query(q, k),
            (variant, q, k),
        )


def test_batch_equals_single_equals_bfs():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(40, 200, seed=11))
    index = build_index(g, "afforest").index
    engine = QueryEngine(index, cache_size=0)  # uncached path
    vertices = np.arange(g.num_vertices)
    for k in (3, 4, 5, 6):
        batch = engine.query_many(vertices, k)
        assert len(batch) == g.num_vertices
        for q in range(g.num_vertices):
            expected = search_communities(index, q, k)
            assert_identical(expected, batch[q], (k, q, "batch"))
            assert_identical(expected, engine.query(q, k), (k, q, "single"))


def test_cached_equals_uncached():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(30, 160, seed=2))
    index = build_index(g, "coptimal").index
    engine = QueryEngine(index, cache_size=64)
    for q, k in every_pair(index):
        first = engine.query(q, k)
        hits_before = engine.cache.hits
        second = engine.query(q, k)
        assert engine.cache.hits == hits_before + 1
        assert second is first  # the cached list itself is served
        assert_identical(search_communities(index, q, k), second, (q, k))


def test_warm_then_query_identical():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(35, 180, seed=5))
    index = build_index(g, "afforest").index
    engine = QueryEngine(index)
    warmed = engine.warm()
    assert warmed == len(engine._materialized)
    for q, k in every_pair(index):
        assert_identical(search_communities(index, q, k), engine.query(q, k), (q, k))
    # warming found every community: queries materialized nothing new
    assert len(engine._materialized) == warmed


def test_validation_matches_bfs_engine():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(20, 80, seed=0))
    index = build_index(g, "afforest").index
    engine = QueryEngine(index)
    with pytest.raises(InvalidParameterError):
        engine.query(0, 2)
    with pytest.raises(InvalidParameterError):
        engine.query(99, 3)
    with pytest.raises(InvalidParameterError):
        engine.query_many([0, 1], 2)
    with pytest.raises(InvalidParameterError):
        engine.query_many([0, 99], 3)
    assert engine.query_many([], 3) == []


def test_k_above_kmax_and_triangle_free():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(30, 15, seed=1))  # sparse
    index = build_index(g, "afforest").index
    engine = QueryEngine(index)
    assert engine.query(0, 3) == []
    assert engine.query_many(np.arange(30), 4) == [[] for _ in range(30)]


# ----------------------------------------------------------------------
# The paper's Figure 3 example as an exact golden case
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig3():
    g = CSRGraph.from_edgelist(paper_example_graph())
    index = build_index(g, "afforest").index
    return g, index, QueryEngine(index)


def test_fig3_golden_vertex6_k5_is_the_k5_clique(fig3):
    g, index, engine = fig3
    (c,) = engine.query(6, 5)
    _, k5_edges = PAPER_EXAMPLE_SUPERNODES["nu4"]  # the τ=5 supernode (the K5)
    assert c.k == 5 and c.num_edges == 10
    assert c.vertices().tolist() == [6, 7, 8, 9, 10]
    assert c.edge_tuples() == k5_edges


def test_fig3_golden_vertex5_k4_spans_nu3_and_nu4(fig3):
    g, index, engine = fig3
    (c,) = engine.query(5, 4)
    expected = PAPER_EXAMPLE_SUPERNODES["nu3"][1] | PAPER_EXAMPLE_SUPERNODES["nu4"][1]
    assert c.edge_tuples() == expected


def test_fig3_golden_no_community_above_kmax(fig3):
    g, index, engine = fig3
    assert engine.query(0, 5) == []
    assert engine.query(6, 6) == []


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_fig3_all_vertices_all_ks_all_variants(variant):
    g = CSRGraph.from_edgelist(paper_example_graph())
    index = build_index(g, variant).index
    engine = QueryEngine(index)
    for k in (3, 4, 5):
        batch = engine.query_many(np.arange(g.num_vertices), k)
        for q in range(g.num_vertices):
            expected = search_communities(index, q, k)
            assert_identical(expected, engine.query(q, k), (variant, q, k))
            assert_identical(expected, batch[q], (variant, q, k, "batch"))
