"""Unit behavior of the serving LRU cache."""

import pytest

from repro.errors import InvalidParameterError
from repro.serve import QueryCache


def test_hit_miss_counters():
    c = QueryCache(capacity=4)
    assert c.get((0, 3)) is None
    assert c.misses == 1 and c.hits == 0
    c.put((0, 3), ["x"])
    assert c.get((0, 3)) == ["x"]
    assert c.hits == 1
    assert c.hit_rate == 0.5
    assert (0, 3) in c and len(c) == 1


def test_lru_eviction_order():
    c = QueryCache(capacity=2)
    c.put("a", 1)
    c.put("b", 2)
    assert c.get("a") == 1  # refresh "a": "b" is now least recent
    c.put("c", 3)
    assert c.evictions == 1
    assert c.get("b") is None
    assert c.get("a") == 1 and c.get("c") == 3


def test_put_existing_key_updates_without_evicting():
    c = QueryCache(capacity=2)
    c.put("a", 1)
    c.put("b", 2)
    c.put("a", 10)
    assert c.evictions == 0
    assert c.get("a") == 10


def test_capacity_zero_disables_caching():
    c = QueryCache(capacity=0)
    c.put("a", 1)
    assert len(c) == 0
    assert c.get("a") is None


def test_invalidate_clears_but_keeps_counters():
    c = QueryCache(capacity=4)
    c.put("a", 1)
    c.get("a")
    c.invalidate()
    assert len(c) == 0
    assert c.hits == 1
    assert c.invalidations == 1
    assert c.get("a") is None  # post-invalidation lookup is a miss


def test_negative_capacity_rejected():
    with pytest.raises(InvalidParameterError):
        QueryCache(capacity=-1)


def test_empty_list_is_a_cacheable_value():
    # [] is falsy but a legitimate result (vertex with no communities);
    # the cache must distinguish it from a miss
    c = QueryCache(capacity=2)
    c.put((1, 3), [])
    assert c.get((1, 3)) == []
    assert c.hits == 1
