"""Fault injection against the serving frontend.

Three failure families the frontend must convert into *typed* protocol
errors rather than hangs or timeouts:

* **shard crash mid-stream** — SIGKILL a shard worker while its batch
  is pinned in flight (the shard's ``--delay-ms`` knob makes this
  deterministic): every in-flight request routed to it fails with
  ``shard_unavailable``, requests routed to the surviving shard answer
  normally, and the next query to the dead partition transparently
  respawns the worker and succeeds;
* **restart exhaustion** — with ``restart_limit=0`` a crashed shard is
  never respawned and keeps failing typed, immediately;
* **overload** — with a tiny admission limit, a burst gets
  ``backpressure`` rejections *immediately* (the rejected requests
  never enter a queue to time out in), while the admitted ones still
  answer correctly.
"""

import os
import signal
import time

from repro.serve import QueryEngine, ServeClient
from repro.serve.frontend import FrontendConfig, FrontendThread
from repro.serve.protocol import serialize_communities


def shard_infos(client):
    """rank -> (pid, owned range) from a live frontend's stats."""
    info = {}
    for entry in client.stats()["shards"]:
        lo, hi = entry["stats"]["owned"]
        info[entry["rank"]] = (entry["pid"], (lo, hi))
    return info


def test_sigkill_mid_stream_typed_errors_then_respawn(served_store):
    graph, index, store_path = served_store("er")
    engine = QueryEngine(index, cache_size=0)
    config = FrontendConfig(
        store_path=store_path, num_shards=2, window_ms=2.0,
        call_timeout_s=60.0,
        shard_args=("--delay-ms", "400"),  # pin batches in flight
    )
    with FrontendThread(config) as server:
        with ServeClient(server.host, server.port, timeout=60.0) as client:
            infos = shard_infos(client)
            victim_pid, (vlo, vhi) = infos[0]
            _, (slo, shi) = infos[1]
            victims = [vlo, vlo + 1, vlo + 2]
            survivors = [slo, slo + 1]
            assert vhi > vlo + 2 and shi > slo + 1

            ids = [
                client.send("query", vertex=v, k=3)
                for v in victims + survivors
            ]
            time.sleep(0.15)  # batch flushed (2 ms window), shards sleeping
            os.kill(victim_pid, signal.SIGKILL)
            responses = client.collect(ids)

            for rid, vertex in zip(ids[: len(victims)], victims):
                resp = responses[rid]
                assert not resp["ok"], (vertex, resp)
                assert resp["error"]["type"] == "shard_unavailable", resp
            for rid, vertex in zip(ids[len(victims):], survivors):
                resp = responses[rid]
                assert resp["ok"], (vertex, resp)
                assert resp["communities"] == serialize_communities(
                    engine.query(vertex, 3, record=False)
                )

            # next query to the dead partition respawns and succeeds
            assert client.query(victims[0], 3) == serialize_communities(
                engine.query(victims[0], 3, record=False)
            )
            stats = client.stats()
            by_rank = {e["rank"]: e for e in stats["shards"]}
            assert by_rank[0]["restarts"] >= 1
            assert by_rank[0]["alive"] and by_rank[0]["pid"] != victim_pid
            assert by_rank[1]["restarts"] == 0


def test_restart_limit_exhaustion_stays_typed(served_store):
    _, _, store_path = served_store("paper")
    config = FrontendConfig(
        store_path=store_path, num_shards=1, restart_limit=0,
    )
    with FrontendThread(config) as server:
        with ServeClient(server.host, server.port, timeout=30.0) as client:
            pid = shard_infos(client)[0][0]
            os.kill(pid, signal.SIGKILL)
            for _ in range(3):  # keeps failing fast, never hangs
                t0 = time.perf_counter()
                rid = client.send("query", vertex=0, k=3)
                resp = client.recv()
                assert resp["id"] == rid and not resp["ok"]
                assert resp["error"]["type"] == "shard_unavailable"
                assert time.perf_counter() - t0 < 10.0


def test_overload_yields_backpressure_not_timeouts(served_store):
    graph, index, store_path = served_store("er")
    engine = QueryEngine(index, cache_size=0)
    burst = 40
    config = FrontendConfig(
        store_path=store_path, num_shards=2, window_ms=100.0,
        max_batch=1024, max_pending=4,
    )
    with FrontendThread(config) as server:
        with ServeClient(server.host, server.port, timeout=30.0) as client:
            t0 = time.perf_counter()
            pairs = [(v % graph.num_vertices, 3) for v in range(burst)]
            responses = client.query_pipeline(pairs)
            elapsed = time.perf_counter() - t0
    assert len(responses) == burst
    ok = [r for r in responses.values() if r["ok"]]
    rejected = [
        r for r in responses.values()
        if not r["ok"] and r["error"]["type"] == "backpressure"
    ]
    assert len(ok) + len(rejected) == burst, responses
    # the admission limit actually bit, and admitted work still finished
    assert len(ok) >= 4 and len(rejected) >= burst // 2
    for resp in ok:
        assert resp["communities"] == serialize_communities(
            engine.query(resp["vertex"], 3, record=False)
        )
    # rejections are immediate answers, not queue-then-timeout: the
    # whole burst (including one 100 ms coalescing window) is bounded
    assert elapsed < 10.0
