"""Dynamic index maintenance equals full rebuild after every update."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equitruss import build_index
from repro.equitruss.dynamic import DynamicEquiTruss
from repro.equitruss.verify import verify_index_semantics
from repro.errors import EdgeNotFoundError
from repro.graph import CSRGraph, build_edgelist
from repro.graph.generators import (
    complete_graph,
    erdos_renyi_gnm,
    paper_example_graph,
)


def rebuilt(graph):
    return build_index(graph, "afforest").index


def assert_matches_rebuild(dyn):
    ref = rebuilt(dyn.graph)
    assert dyn.index == ref
    verify_index_semantics(dyn.graph, dyn.index)


def test_insert_creates_new_triangles():
    g = CSRGraph.from_edgelist(paper_example_graph())
    dyn = DynamicEquiTruss(g)
    # connect vertex 1 to 4 and 5: creates triangles with K4 {3,4,5,6}
    stats = dyn.insert_edges([1, 1], [4, 5])
    assert stats.num_inserted == 2
    assert_matches_rebuild(dyn)


def test_insert_duplicate_edge_is_noop_structurally():
    g = CSRGraph.from_edgelist(paper_example_graph())
    dyn = DynamicEquiTruss(g)
    before = dyn.index
    stats = dyn.insert_edges([0], [1])  # already present
    assert stats.num_inserted == 0
    assert dyn.index == before


def test_insert_new_vertex():
    g = CSRGraph.from_edgelist(complete_graph(4))
    dyn = DynamicEquiTruss(g)
    dyn.insert_edges([0, 1, 4], [4, 4, 2])
    assert dyn.graph.num_vertices == 5
    assert_matches_rebuild(dyn)


def test_insert_bridges_two_components():
    # two disjoint K4s joined by new edges into shared triangles
    a = complete_graph(4)
    src = np.concatenate([a.u, a.u + 4])
    dst = np.concatenate([a.v, a.v + 4])
    g = CSRGraph.from_edgelist(build_edgelist(src, dst, num_vertices=8))
    dyn = DynamicEquiTruss(g)
    dyn.insert_edges([3, 3, 2], [4, 5, 4])
    assert_matches_rebuild(dyn)
    assert dyn.last_update.affected_edges > 3


def test_remove_edge_splits_supernode():
    g = CSRGraph.from_edgelist(paper_example_graph())
    dyn = DynamicEquiTruss(g)
    stats = dyn.remove_edges([6], [10])  # weaken the K5
    assert stats.num_removed == 1
    assert_matches_rebuild(dyn)


def test_remove_missing_edge_raises():
    g = CSRGraph.from_edgelist(complete_graph(4))
    dyn = DynamicEquiTruss(g)
    with pytest.raises(EdgeNotFoundError):
        dyn.remove_edges([0], [9])


def test_remove_triangle_free_edge():
    g = CSRGraph.from_edgelist(build_edgelist([0, 0, 1, 2], [1, 2, 2, 3]))
    dyn = DynamicEquiTruss(g)
    dyn.remove_edges([2], [3])
    assert_matches_rebuild(dyn)


def test_mixed_update_sequence():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(25, 90, seed=4))
    dyn = DynamicEquiTruss(g, variant="coptimal")
    rng = np.random.default_rng(1)
    for step in range(4):
        if step % 2 == 0:
            us = rng.integers(0, 25, size=3)
            vs = rng.integers(0, 25, size=3)
            keep = us != vs
            if keep.any():
                dyn.insert_edges(us[keep], vs[keep])
        else:
            e = rng.integers(0, dyn.graph.num_edges)
            dyn.remove_edges(
                [int(dyn.graph.edges.u[e])], [int(dyn.graph.edges.v[e])]
            )
        assert_matches_rebuild(dyn)


def test_affected_fraction_is_local_for_disjoint_update():
    # two far-apart cliques; touching one leaves the other's edges alone
    a = complete_graph(6)
    src = np.concatenate([a.u, a.u + 6])
    dst = np.concatenate([a.v, a.v + 6])
    g = CSRGraph.from_edgelist(build_edgelist(src, dst, num_vertices=12))
    dyn = DynamicEquiTruss(g)
    stats = dyn.remove_edges([0], [1])
    # only the first clique's component recomputes
    assert stats.affected_edges <= a.num_edges
    assert stats.affected_fraction < 0.6
    assert_matches_rebuild(dyn)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    data=st.data(),
)
def test_property_updates_match_rebuild(seed, data):
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(14, 40, seed=seed))
    dyn = DynamicEquiTruss(g)
    rng = np.random.default_rng(seed)
    for _ in range(2):
        if data.draw(st.booleans()) or dyn.graph.num_edges == 0:
            us = rng.integers(0, 14, size=2)
            vs = rng.integers(0, 14, size=2)
            keep = us != vs
            if not keep.any():
                continue
            dyn.insert_edges(us[keep], vs[keep])
        else:
            e = int(rng.integers(0, dyn.graph.num_edges))
            dyn.remove_edges(
                [int(dyn.graph.edges.u[e])], [int(dyn.graph.edges.v[e])]
            )
        assert_matches_rebuild(dyn)
