"""Unit tests for per-level hook/superedge tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equitruss.levels import build_level_structures, triangle_tables
from repro.equitruss.variants import recompute_level_tables
from repro.errors import InvalidParameterError
from repro.graph import CSRGraph
from repro.graph.generators import complete_graph, erdos_renyi_gnm, paper_example_graph
from repro.triangles import enumerate_triangles
from repro.truss import truss_decomposition


def prepared(edges):
    g = CSRGraph.from_edgelist(edges)
    tri = enumerate_triangles(g)
    dec = truss_decomposition(g, triangles=tri)
    return g, tri, dec


def test_k4_single_level():
    g, tri, dec = prepared(complete_graph(4))
    levels = build_level_structures(tri, dec.trussness)
    assert levels.levels.tolist() == [4]
    a, b = levels.hook_pairs(4)
    # 4 triangles x 3 same-k pairs each
    assert a.size == 12
    assert levels.superedge_candidates(4)[0].size == 0
    assert levels.num_superedge_candidates == 0


def test_paper_example_levels():
    g, tri, dec = prepared(paper_example_graph())
    levels = build_level_structures(tri, dec.trussness)
    assert levels.levels.tolist() == [3, 4, 5]
    tau = dec.trussness
    for k in (3, 4, 5):
        a, b = levels.hook_pairs(k)
        # hook pairs join equal-trussness edges at their own level
        assert np.all(tau[a] == k) and np.all(tau[b] == k)
        lo, hi = levels.superedge_candidates(k)
        # candidates are emitted at the *high* edge's level
        assert np.all(tau[hi] == k)
        assert np.all(tau[lo] < k)


def test_hook_pairs_require_third_edge_at_level():
    # triangle with trussness pattern (3, 4, 4): the two 4-edges must NOT
    # hook through it (the triangle is outside the 4-truss)
    g, tri, dec = prepared(paper_example_graph())
    levels = build_level_structures(tri, dec.trussness)
    a, b = levels.hook_pairs(4)
    eid_03 = g.edges.edge_id(0, 3)   # tau 4
    eid_34 = g.edges.edge_id(3, 4)   # tau 4
    # (0,3)-(3,4) share only triangle (0,3,4) whose third edge (0,4) has tau 3
    pairs = set(zip(a.tolist(), b.tolist())) | set(zip(b.tolist(), a.tolist()))
    assert (eid_03, eid_34) not in pairs


def test_triangle_tables_validation():
    g, tri, dec = prepared(complete_graph(4))
    with pytest.raises(InvalidParameterError):
        triangle_tables(tri, dec.trussness[:-1])


def test_adjacency_only_when_requested():
    g, tri, dec = prepared(complete_graph(5))
    plain = build_level_structures(tri, dec.trussness)
    with pytest.raises(InvalidParameterError):
        plain.adjacency_arrays()
    with_adj = build_level_structures(tri, dec.trussness, with_adjacency=True)
    indptr, nbrs = with_adj.adjacency_arrays()
    assert indptr.size == g.num_edges + 1
    assert nbrs.size == 2 * with_adj.num_hook_pairs


def test_adjacency_joins_only_same_trussness():
    g, tri, dec = prepared(erdos_renyi_gnm(30, 140, seed=3))
    levels = build_level_structures(tri, dec.trussness, with_adjacency=True)
    indptr, nbrs = levels.adjacency_arrays()
    tau = dec.trussness
    for e in range(g.num_edges):
        for other in nbrs[indptr[e] : indptr[e + 1]]:
            assert tau[e] == tau[other]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_recomputed_tables_match_prebuilt(seed):
    """Baseline's per-level recomputation derives the same pair sets as
    the C-Optimal prebuilt tables (as multisets of unordered pairs up to
    the Baseline's double-visit duplicates)."""
    g, tri, dec = prepared(erdos_renyi_gnm(18, 70, seed=seed))
    levels = build_level_structures(tri, dec.trussness)
    for k in levels.levels.tolist():
        pa, pb = levels.hook_pairs(k)
        want = {frozenset((int(x), int(y))) for x, y in zip(pa, pb)}
        ra, rb, rlo, rhi = recompute_level_tables(g, dec.trussness, k)
        got = {frozenset((int(x), int(y))) for x, y in zip(ra, rb)}
        assert got == want, k
        slo, shi = levels.superedge_candidates(k)
        want_se = set(zip(slo.tolist(), shi.tolist()))
        got_se = set(zip(rlo.tolist(), rhi.tolist()))
        assert got_se == want_se, k
