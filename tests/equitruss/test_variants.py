"""Direct unit tests of the three SpNode kernels."""

import numpy as np
import pytest

from repro.equitruss.levels import build_level_structures
from repro.equitruss.variants import (
    recompute_level_tables,
    spnode_afforest,
    spnode_baseline,
    spnode_coptimal,
    sv_rounds_noskip,
)
from repro.graph import CSRGraph
from repro.graph.generators import erdos_renyi_gnm, paper_example_graph
from repro.parallel.instrument import Instrumentation
from repro.triangles import enumerate_triangles
from repro.truss import truss_decomposition


@pytest.fixture(scope="module")
def prepared():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(35, 170, seed=6))
    tri = enumerate_triangles(g)
    dec = truss_decomposition(g, triangles=tri)
    levels = build_level_structures(tri, dec.trussness, with_adjacency=True)
    return g, tri, dec, levels


def run_all_levels(kernel, g, dec, levels):
    comp = np.arange(g.num_edges, dtype=np.int64)
    for k in levels.levels.tolist():
        kernel(comp, k)
    return comp


def test_all_spnode_kernels_agree(prepared):
    g, tri, dec, levels = prepared
    base = run_all_levels(
        lambda comp, k: spnode_baseline(comp, g, dec.trussness, k), g, dec, levels
    )
    copt = run_all_levels(lambda comp, k: spnode_coptimal(comp, levels, k), g, dec, levels)
    aff = run_all_levels(
        lambda comp, k: spnode_afforest(comp, levels, k, dec.phi(k)), g, dec, levels
    )
    assert np.array_equal(base, copt)
    assert np.array_equal(base, aff)


def test_spnode_components_are_min_edge_roots(prepared):
    g, tri, dec, levels = prepared
    comp = run_all_levels(lambda c, k: spnode_coptimal(c, levels, k), g, dec, levels)
    # every root is the minimum edge id of its component
    for root in np.unique(comp):
        members = np.flatnonzero(comp == root)
        assert members.min() == root


def test_sv_rounds_noskip_empty():
    comp = np.arange(5, dtype=np.int64)
    assert sv_rounds_noskip(comp, np.empty(0, np.int64), np.empty(0, np.int64)) == 0
    assert comp.tolist() == [0, 1, 2, 3, 4]


def test_sv_rounds_chain_converges():
    n = 64
    comp = np.arange(n, dtype=np.int64)
    a = np.arange(n - 1, dtype=np.int64)
    b = a + 1
    rounds = sv_rounds_noskip(comp, a, b)
    assert np.all(comp == 0)
    assert rounds <= n  # log-ish in practice


def test_baseline_returns_superedge_candidates():
    g = CSRGraph.from_edgelist(paper_example_graph())
    dec = truss_decomposition(g)
    comp = np.arange(g.num_edges, dtype=np.int64)
    # level 3 first (no superedges: nothing below 3)
    se_lo, se_hi = spnode_baseline(comp, g, dec.trussness, 3)
    assert se_lo.size == 0
    se_lo4, se_hi4 = spnode_baseline(comp, g, dec.trussness, 4)
    assert se_lo4.size > 0
    assert np.all(dec.trussness[se_lo4] == 3)
    assert np.all(dec.trussness[se_hi4] == 4)


def test_instrumentation_handles_record_work(prepared):
    g, tri, dec, levels = prepared
    trace = Instrumentation()
    comp = np.arange(g.num_edges, dtype=np.int64)
    with trace.region("SpNode", work=0, rounds=0) as h:
        for k in levels.levels.tolist():
            # passing a bare region handle still works via the
            # ExecutionContext.ensure shim
            spnode_coptimal(comp, levels, k, ctx=h)
    region = trace.regions[0]
    assert region.work >= levels.num_hook_pairs
    assert region.rounds >= levels.levels.size


def test_afforest_neighbor_rounds_zero(prepared):
    g, tri, dec, levels = prepared
    ref = run_all_levels(lambda c, k: spnode_coptimal(c, levels, k), g, dec, levels)
    comp = np.arange(g.num_edges, dtype=np.int64)
    for k in levels.levels.tolist():
        spnode_afforest(comp, levels, k, dec.phi(k), neighbor_rounds=0)
    assert np.array_equal(comp, ref)


def test_recompute_level_tables_empty_level():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(10, 9, seed=0))
    dec = truss_decomposition(g)
    a, b, lo, hi = recompute_level_tables(g, dec.trussness, 99)
    assert a.size == b.size == lo.size == hi.size == 0


def test_recompute_level_tables_batching(prepared):
    g, tri, dec, levels = prepared
    for k in levels.levels.tolist():
        full = recompute_level_tables(g, dec.trussness, k, batch_edges=1 << 20)
        tiny = recompute_level_tables(g, dec.trussness, k, batch_edges=3)
        for x, y in zip(full, tiny):
            assert sorted(x.tolist()) == sorted(y.tolist())
