"""All construction variants produce identical canonical indexes.

This is the paper's accuracy claim (§4.3): supernode counts, constituent
edges, and superedges of all parallel versions match the sequential
reference exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equitruss import build_index, equitruss_serial
from repro.graph import CSRGraph
from repro.graph.generators import (
    complete_graph,
    erdos_renyi_gnm,
    paper_example_graph,
    planted_community_graph,
    rmat_graph,
    watts_strogatz_graph,
)

PARALLEL = ["baseline", "coptimal", "afforest"]


def all_indexes(g, **kwargs):
    serial = equitruss_serial(g)
    out = {"serial": serial}
    for variant in PARALLEL:
        out[variant] = build_index(g, variant, **kwargs).index
    return out


@pytest.mark.parametrize(
    "edges",
    [
        erdos_renyi_gnm(40, 200, seed=0),
        erdos_renyi_gnm(60, 150, seed=1),
        rmat_graph(7, 8, seed=2),
        watts_strogatz_graph(60, 6, 0.2, seed=3),
        complete_graph(9),
        paper_example_graph(),
        planted_community_graph(4, 5, 8, p_intra=0.9, overlap=2, seed=4)[0],
    ],
    ids=["gnm0", "gnm1", "rmat", "ws", "k9", "paper", "planted"],
)
def test_all_variants_identical(edges):
    g = CSRGraph.from_edgelist(edges)
    indexes = all_indexes(g)
    ref = indexes.pop("serial")
    ref.validate()
    for name, idx in indexes.items():
        idx.validate()
        assert idx == ref, name


def test_worker_count_invariance():
    g = CSRGraph.from_edgelist(rmat_graph(7, 8, seed=5))
    ref = build_index(g, "coptimal", num_workers=1).index
    for workers in (2, 4, 7):
        for variant in PARALLEL:
            assert build_index(g, variant, num_workers=workers).index == ref


def test_afforest_options_invariance():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(50, 220, seed=6))
    ref = build_index(g, "afforest").index
    for rounds in (0, 1, 4):
        assert build_index(g, "afforest", neighbor_rounds=rounds).index == ref
    for seed in (1, 2):
        assert build_index(g, "afforest", seed=seed).index == ref


def test_unknown_variant():
    from repro.errors import InvalidParameterError

    g = CSRGraph.from_edgelist(complete_graph(4))
    with pytest.raises(InvalidParameterError):
        build_index(g, "quantum")


def test_precomputed_inputs_reused():
    from repro.triangles import enumerate_triangles
    from repro.truss import truss_decomposition

    g = CSRGraph.from_edgelist(rmat_graph(6, 6, seed=7))
    tri = enumerate_triangles(g)
    dec = truss_decomposition(g, triangles=tri)
    res = build_index(g, "coptimal", decomp=dec, triangles=tri)
    assert res.index == equitruss_serial(g, decomp=dec)
    # Support/TrussDecomp kernels skipped when inputs are supplied
    names = {r.name for r in res.trace.regions}
    assert "Support" not in names and "TrussDecomp" not in names


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=24),
    data=st.data(),
)
def test_property_variants_equal_serial(n, data):
    max_m = n * (n - 1) // 2
    m = data.draw(st.integers(min_value=0, max_value=max_m))
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(n, m, seed=seed))
    indexes = all_indexes(g)
    ref = indexes.pop("serial")
    ref.validate()
    for name, idx in indexes.items():
        assert idx == ref, name


def test_serial_dict_equals_array_lookup():
    g = CSRGraph.from_edgelist(rmat_graph(6, 8, seed=9))
    assert equitruss_serial(g, lookup="dict") == equitruss_serial(g, lookup="array")


def test_serial_rejects_bad_lookup():
    from repro.errors import InvalidParameterError

    g = CSRGraph.from_edgelist(complete_graph(4))
    with pytest.raises(InvalidParameterError):
        equitruss_serial(g, lookup="hash")
