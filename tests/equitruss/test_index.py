"""Unit tests for the EquiTrussIndex structure itself."""

import numpy as np
import pytest

from repro.equitruss import build_index
from repro.errors import IndexIntegrityError, InvalidParameterError
from repro.graph import CSRGraph
from repro.graph.generators import (
    paper_example_graph,
    path_graph,
    rmat_graph,
)


@pytest.fixture(scope="module")
def paper_index():
    g = CSRGraph.from_edgelist(paper_example_graph())
    return build_index(g, "afforest").index


def test_stats(paper_index):
    stats = paper_index.stats()
    assert stats["num_supernodes"] == 5
    assert stats["num_superedges"] == 6
    assert stats["num_indexed_edges"] == 27
    assert stats["kmax"] == 5
    assert stats["max_supernode_size"] == 10


def test_supernode_ordering(paper_index):
    ks = paper_index.supernode_trussness
    assert np.all(np.diff(ks) >= 0)
    assert ks.tolist() == [3, 3, 4, 4, 5]


def test_edges_of_sorted(paper_index):
    for sn in range(paper_index.num_supernodes):
        eids = paper_index.edges_of(sn)
        assert np.all(np.diff(eids) > 0)


def test_supernodes_of_vertex(paper_index):
    # vertex 5 touches nu3 (its K4 + (5,7),(5,10)) only
    sns5 = paper_index.supernodes_of_vertex(5)
    assert len(sns5) == 1
    # vertex 2 touches nu1 (K4 on 0..3) and nu2 ((2,6),(2,8))
    sns2 = paper_index.supernodes_of_vertex(2)
    assert len(sns2) == 2
    # with k_min=4 only the K4 supernode remains
    sns2_k4 = paper_index.supernodes_of_vertex(2, k_min=4)
    assert len(sns2_k4) == 1
    with pytest.raises(InvalidParameterError):
        paper_index.supernodes_of_vertex(99)


def test_supernode_adjacency(paper_index):
    indptr, nbrs = paper_index.supernode_adjacency()
    assert indptr.size == paper_index.num_supernodes + 1
    assert nbrs.size == 2 * paper_index.num_superedges
    # symmetric
    for sn in range(paper_index.num_supernodes):
        for other in nbrs[indptr[sn] : indptr[sn + 1]]:
            row = nbrs[indptr[other] : indptr[other + 1]]
            assert sn in row


def test_save_load_roundtrip(tmp_path, paper_index):
    p = tmp_path / "index.npz"
    paper_index.save(p)
    loaded = type(paper_index).load(p)
    assert loaded == paper_index
    loaded.validate()


def test_validate_catches_corruption(paper_index):
    g = paper_index.graph
    idx = build_index(g, "coptimal").index

    idx.edge_supernode = idx.edge_supernode.copy()
    idx.edge_supernode[0] = -1
    with pytest.raises(IndexIntegrityError):
        idx.validate()


def test_validate_catches_duplicate_superedge():
    g = CSRGraph.from_edgelist(paper_example_graph())
    idx = build_index(g, "coptimal").index
    idx.superedges = np.concatenate([idx.superedges, idx.superedges[:1]])
    with pytest.raises(IndexIntegrityError):
        idx.validate()


def test_validate_catches_same_trussness_superedge():
    g = CSRGraph.from_edgelist(paper_example_graph())
    idx = build_index(g, "coptimal").index
    same_k = np.array([[0, 1]])  # nu0 and nu2 both have trussness 3
    idx.superedges = np.concatenate([idx.superedges, same_k])
    with pytest.raises(IndexIntegrityError):
        idx.validate()


def test_triangle_free_graph_empty_index():
    g = CSRGraph.from_edgelist(path_graph(6))
    idx = build_index(g, "afforest").index
    idx.validate()
    assert idx.num_supernodes == 0
    assert idx.num_superedges == 0
    assert np.all(idx.edge_supernode == -1)


def test_supernodes_partition_indexed_edges():
    g = CSRGraph.from_edgelist(rmat_graph(7, 10, seed=11))
    idx = build_index(g, "afforest").index
    seen = np.zeros(g.num_edges, dtype=int)
    for sn in range(idx.num_supernodes):
        seen[idx.edges_of(sn)] += 1
    member = idx.trussness >= 3
    assert np.all(seen[member] == 1)
    assert np.all(seen[~member] == 0)


def test_repr(paper_index):
    text = repr(paper_index)
    assert "supernodes=5" in text and "superedges=6" in text
