"""Deep semantic verification of built indexes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equitruss import build_index, equitruss_serial
from repro.equitruss.verify import verify_index_semantics
from repro.errors import IndexIntegrityError
from repro.graph import CSRGraph
from repro.graph.generators import (
    erdos_renyi_gnm,
    paper_example_graph,
    planted_community_graph,
    rmat_graph,
)


@pytest.mark.parametrize("variant", ["baseline", "coptimal", "afforest"])
def test_built_indexes_pass_semantics(variant):
    for edges in (
        paper_example_graph(),
        rmat_graph(7, 7, seed=1),
        planted_community_graph(4, 5, 8, overlap=1, seed=2)[0],
    ):
        g = CSRGraph.from_edgelist(edges)
        index = build_index(g, variant).index
        verify_index_semantics(g, index)


def test_serial_passes_semantics():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(40, 200, seed=3))
    verify_index_semantics(g, equitruss_serial(g))


def test_detects_wrong_trussness():
    g = CSRGraph.from_edgelist(paper_example_graph())
    index = build_index(g, "afforest").index
    index.trussness = index.trussness.copy()
    index.trussness[0] = 2 if index.trussness[0] >= 3 else 3
    with pytest.raises(IndexIntegrityError):
        verify_index_semantics(g, index)


def test_detects_missing_superedge():
    g = CSRGraph.from_edgelist(paper_example_graph())
    index = build_index(g, "afforest").index
    index.superedges = index.superedges[:-1]
    with pytest.raises(IndexIntegrityError, match="superedge"):
        verify_index_semantics(g, index)


def test_detects_split_supernode():
    g = CSRGraph.from_edgelist(paper_example_graph())
    index = build_index(g, "afforest").index
    # split the K5 supernode (id 4) by reassigning one edge to a new id —
    # rebuild the CSR arrays so validate() passes but semantics fail
    sn = index.edge_supernode.copy()
    victim = index.edges_of(4)[0]
    sn[victim] = 5
    index.edge_supernode = sn
    index.supernode_trussness = np.append(index.supernode_trussness, 5)
    counts = np.bincount(sn[sn >= 0], minlength=6)
    indptr = np.zeros(7, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    member_ids = np.flatnonzero(sn >= 0)
    order = np.lexsort((member_ids, sn[member_ids]))
    index.supernode_indptr = indptr
    index.supernode_edges = member_ids[order]
    index._sn_adj = None
    with pytest.raises(IndexIntegrityError):
        verify_index_semantics(g, index)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=22),
    data=st.data(),
)
def test_property_semantics_hold(n, data):
    m = data.draw(st.integers(min_value=0, max_value=n * (n - 1) // 2))
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(n, m, seed=seed))
    index = build_index(g, "coptimal").index
    verify_index_semantics(g, index)
