"""Unit tests for superedge generation and the Algorithm-4 merge."""

import numpy as np
import pytest

from repro.equitruss.merge import generate_superedges, merge_supergraph
from repro.errors import InvalidParameterError


def test_generate_empty_level_keeps_shape():
    comp = np.arange(10, dtype=np.int64)
    subsets = generate_superedges(comp, np.empty(0, np.int64), np.empty(0, np.int64), 3)
    assert len(subsets) == 3
    assert all(s == [] for s in subsets)


def test_generate_resolves_roots_and_dedups_locally():
    comp = np.array([0, 0, 2, 2, 4], dtype=np.int64)
    se_lo = np.array([1, 0, 1], dtype=np.int64)  # all root 0
    se_hi = np.array([3, 2, 2], dtype=np.int64)  # all root 2
    subsets = generate_superedges(comp, se_lo, se_hi, num_workers=1)
    (arr,) = subsets[0]
    # three candidates collapse into one local (0, 2) pair
    assert arr.tolist() == [[0, 2]]


def test_generate_accumulates_across_levels():
    comp = np.arange(6, dtype=np.int64)
    subsets = generate_superedges(comp, np.array([0]), np.array([1]), 2)
    subsets = generate_superedges(comp, np.array([2]), np.array([3]), 2, subsets)
    total = sum(len(s) for s in subsets)
    assert total == 2


def test_generate_validates_workers():
    comp = np.arange(3, dtype=np.int64)
    with pytest.raises(InvalidParameterError):
        generate_superedges(comp, np.array([0]), np.array([1]), num_workers=0)


def test_merge_empty():
    assert merge_supergraph([]).shape == (0, 2)
    assert merge_supergraph([[], []]).shape == (0, 2)


def test_merge_dedups_across_workers():
    a = np.array([[1, 5], [2, 7]], dtype=np.int64)
    b = np.array([[5, 1], [3, 9]], dtype=np.int64)  # (5,1) duplicates (1,5)
    merged = merge_supergraph([[a], [b]], num_workers=2)
    assert sorted(map(tuple, merged.tolist())) == [(1, 5), (2, 7), (3, 9)]


def test_merge_canonicalizes_order():
    a = np.array([[9, 2]], dtype=np.int64)
    merged = merge_supergraph([[a]], num_workers=1)
    assert merged.tolist() == [[2, 9]]


def test_merge_worker_count_invariance():
    rng = np.random.default_rng(0)
    pairs = rng.integers(0, 50, size=(500, 2)).astype(np.int64)
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    ref = merge_supergraph([[pairs]], num_workers=1)
    for workers in (2, 3, 8, 16):
        out = merge_supergraph([[pairs]], num_workers=workers)
        assert np.array_equal(out, ref)
