"""Exact reproduction of the paper's Figure 3 worked example.

The paper publishes the complete supernode contents and the superedge
structure of the 11-vertex sample graph; every implementation must
reproduce them verbatim (the paper reports 100% output accuracy for all
variants — Table 5 discussion).
"""

import pytest

from repro.equitruss import build_index, equitruss_serial
from repro.graph import CSRGraph
from repro.graph.generators import (
    PAPER_EXAMPLE_SUPEREDGES,
    PAPER_EXAMPLE_SUPERNODES,
    paper_example_graph,
)

BUILDERS = [
    ("serial-array", lambda g: equitruss_serial(g, lookup="array")),
    ("serial-dict", lambda g: equitruss_serial(g, lookup="dict")),
    ("baseline", lambda g: build_index(g, "baseline").index),
    ("coptimal", lambda g: build_index(g, "coptimal").index),
    ("afforest", lambda g: build_index(g, "afforest").index),
]


def expected_structures(graph):
    """Published supernodes/superedges translated to edge-id form."""
    name_to_edges = {}
    name_to_k = {}
    for name, (k, edge_set) in PAPER_EXAMPLE_SUPERNODES.items():
        ids = frozenset(graph.edges.edge_id(a, b) for a, b in edge_set)
        name_to_edges[name] = ids
        name_to_k[name] = k
    superedges = {
        frozenset({name_to_edges[a], name_to_edges[b]})
        for a, b in (tuple(p) for p in PAPER_EXAMPLE_SUPEREDGES)
    }
    return name_to_edges, name_to_k, superedges


@pytest.mark.parametrize("name,builder", BUILDERS)
def test_fig3_supernodes_and_superedges(name, builder):
    g = CSRGraph.from_edgelist(paper_example_graph())
    index = builder(g)
    index.validate()

    name_to_edges, name_to_k, expected_se = expected_structures(g)

    got_supernodes = {
        frozenset(index.edges_of(sn).tolist()): int(index.supernode_trussness[sn])
        for sn in range(index.num_supernodes)
    }
    expected_supernodes = {
        edges: name_to_k[nm] for nm, edges in name_to_edges.items()
    }
    assert got_supernodes == expected_supernodes, name

    got_se = {
        frozenset(
            {
                frozenset(index.edges_of(int(a)).tolist()),
                frozenset(index.edges_of(int(b)).tolist()),
            }
        )
        for a, b in index.superedges.tolist()
    }
    assert got_se == expected_se, name


def test_fig3_counts():
    g = CSRGraph.from_edgelist(paper_example_graph())
    index = build_index(g, "afforest").index
    assert index.num_supernodes == 5
    assert index.num_superedges == 6
