"""Dtype-policy invariance: int32 and int64 builds are bit-identical.

The canonical :class:`EquiTrussIndex` must not depend on whether the
pipeline ran on narrow (int32) or wide (int64) arrays — for any variant,
any graph. This pins the acceptance criterion of the adaptive-dtype
refactor: ``auto`` may halve memory, never change answers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equitruss import build_index, equitruss_serial
from repro.graph import CSRGraph
from repro.graph.generators import erdos_renyi_gnm, paper_example_graph
from repro.parallel import ExecutionContext

VARIANTS = ["baseline", "coptimal", "afforest"]
POLICIES = ["auto", "int32", "int64"]


def build_under(edges, variant, dtype_policy):
    ctx = ExecutionContext(dtype=dtype_policy)
    g = CSRGraph.from_edgelist(edges, ctx=ctx)
    return build_index(g, variant, ctx=ctx).index


@pytest.mark.parametrize("variant", VARIANTS)
def test_fig3_paper_example_exact_under_both_policies(variant):
    """Fig. 3 of the paper: the example index, exact under every dtype."""
    edges = paper_example_graph()
    ref = equitruss_serial(CSRGraph.from_edgelist(edges))
    ref.validate()
    for dtype_policy in POLICIES:
        idx = build_under(edges, variant, dtype_policy)
        idx.validate()
        assert idx == ref, (variant, dtype_policy)


@pytest.mark.parametrize("variant", VARIANTS)
def test_dtype_policies_agree_on_random_graph(variant):
    edges = erdos_renyi_gnm(48, 260, seed=13)
    built = {p: build_under(edges, variant, p) for p in POLICIES}
    assert built["int32"] == built["int64"]
    assert built["auto"] == built["int64"]


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=30),
    data=st.data(),
)
def test_property_int32_int64_identical_all_variants(n, data):
    max_m = n * (n - 1) // 2
    m = data.draw(st.integers(min_value=0, max_value=max_m))
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    edges = erdos_renyi_gnm(n, m, seed=seed)
    ref = equitruss_serial(CSRGraph.from_edgelist(edges))
    for variant in VARIANTS:
        narrow = build_under(edges, variant, "int32")
        wide = build_under(edges, variant, "int64")
        assert narrow == wide, variant
        assert narrow == ref, variant


def test_narrow_build_really_uses_int32_arrays():
    """Sanity: the auto policy actually narrows the hot arrays."""
    ctx = ExecutionContext(dtype="auto")
    edges = erdos_renyi_gnm(40, 200, seed=3)
    g = CSRGraph.from_edgelist(edges, ctx=ctx)
    assert g.index_dtype == np.dtype(np.int32)
    from repro.triangles import enumerate_triangles

    tri = enumerate_triangles(g, ctx=ctx)
    assert tri.e_uv.dtype == np.dtype(np.int32)
    result = build_index(g, "afforest", ctx=ctx)
    assert result.index == equitruss_serial(g)
    # canonical outputs stay int64 regardless of the build dtype
    assert result.index.edge_supernode.dtype == np.dtype(np.int64)
    assert result.index.superedges.dtype == np.dtype(np.int64)


def test_forced_int32_rejects_oversized_graph():
    from repro.errors import InvalidParameterError

    ctx = ExecutionContext(dtype="int32")
    with pytest.raises(InvalidParameterError):
        ctx.dtype.resolve(np.iinfo(np.int32).max + 1)
