"""Tests for the dynamic write-set race detector (repro.analysis.races).

The two seeded-bug tests are the acceptance criteria: a deliberately
overlapping partition kernel and a deliberate cross-worker stale read
must both fail loudly — including on a 1-core machine, where the tasks
never actually interleave. Shipped kernels must stay race-clean with
bit-identical results under tracking.
"""

import numpy as np
import pytest

import repro.analysis.races as races
from repro.analysis.races import TrackedArray, verify_task_accesses
from repro.errors import (
    PartitionOverlapError,
    SharedMemoryRaceError,
    StaleReadError,
)
from repro.parallel.context import ExecutionContext
from repro.parallel.shm import ProcessBackend, attach, process_backend_available

needs_fork = pytest.mark.skipif(
    not process_backend_available(),
    reason="fork or POSIX shared memory unavailable",
)


@pytest.fixture
def tracking():
    races.reset_tracking()
    races.enable_tracking(True)
    yield
    races.reset_tracking()


# ----------------------------------------------------------------------
# module-level worker kernels (pickled by reference into the pool)
# ----------------------------------------------------------------------

def _w_disjoint(h, lo, hi):
    out = attach(h)
    out[lo:hi] = np.arange(lo, hi, dtype=np.int64)
    return hi - lo


def _w_overlapping(h, lo, hi):
    out = attach(h)
    out[0:hi] = 7  # bug: every task also stomps [0, lo)
    return hi


def _w_stale_read(h, lo, hi, rlo, rhi):
    out = attach(h)
    out[lo:hi] = out[rlo:rhi] + 1  # bug: reads the sibling's slice
    return hi - lo


def _w_read_shared_input(out_h, in_h, lo, hi):
    src = attach(in_h)
    out = attach(out_h)
    out[lo:hi] = src[:] .sum()  # all tasks read all of src: fine (read-only)
    return hi - lo


# ----------------------------------------------------------------------
# verify_task_accesses — pure interval logic, no processes involved
# ----------------------------------------------------------------------

def test_verify_disjoint_writes_pass():
    verify_task_accesses([
        [("seg", "w", 0, 64)],
        [("seg", "w", 64, 128)],
    ])


def test_verify_overlapping_writes_raise():
    with pytest.raises(PartitionOverlapError, match="workers 0 and 1"):
        verify_task_accesses([
            [("seg", "w", 0, 80)],
            [("seg", "w", 64, 128)],
        ])


def test_verify_cross_task_read_write_raises():
    with pytest.raises(StaleReadError, match="schedule-dependent"):
        verify_task_accesses([
            [("seg", "w", 0, 64), ("seg", "r", 64, 128)],
            [("seg", "w", 64, 128)],
        ])


def test_verify_own_slice_reads_and_shared_reads_pass():
    verify_task_accesses([
        [("out", "w", 0, 64), ("out", "r", 0, 64), ("in", "r", 0, 256)],
        [("out", "w", 64, 128), ("in", "r", 0, 256)],
    ])


def test_verify_skips_untracked_tasks():
    verify_task_accesses([None, [("seg", "w", 0, 64)], None])


def test_verify_distinct_segments_never_conflict():
    verify_task_accesses([
        [("a", "w", 0, 64)],
        [("b", "w", 0, 64)],
    ])


def test_race_errors_share_a_catchable_base():
    assert issubclass(PartitionOverlapError, SharedMemoryRaceError)
    assert issubclass(StaleReadError, SharedMemoryRaceError)


# ----------------------------------------------------------------------
# TrackedArray — access logging semantics
# ----------------------------------------------------------------------

def test_tracked_slice_write_logs_byte_range():
    arr = np.zeros(16, dtype=np.int64)
    t = TrackedArray.wrap(arr, "seg")
    races.drain_log()
    t[2:6] = 1
    log = races.drain_log()
    assert ("seg", "w", 16, 48) in log
    assert np.array_equal(arr[2:6], np.ones(4, dtype=np.int64))


def test_tracked_slice_read_logs_byte_range():
    t = TrackedArray.wrap(np.arange(16, dtype=np.int64), "seg")
    races.drain_log()
    _ = t[4:8]
    log = races.drain_log()
    assert ("seg", "r", 32, 64) in log


def test_tracked_views_stay_tracked():
    t = TrackedArray.wrap(np.zeros((4, 8), dtype=np.int64), "seg")
    races.drain_log()
    row = t[1]
    row[:] = 5
    log = races.drain_log()
    # the row write covers exactly bytes [64, 128) of the segment
    assert ("seg", "w", 64, 128) in log


def test_tracked_inplace_ufunc_logs_write_and_keeps_tracking():
    t = TrackedArray.wrap(np.zeros(8, dtype=np.int64), "seg")
    races.drain_log()
    t += 3
    assert isinstance(t, TrackedArray)  # rebind must not lose tracking
    log = races.drain_log()
    assert ("seg", "w", 0, 64) in log
    t[0:2] = 9
    assert ("seg", "w", 0, 16) in races.drain_log()


def test_tracked_copyto_logs_write():
    t = TrackedArray.wrap(np.zeros(8, dtype=np.int64), "seg")
    races.drain_log()
    np.copyto(t, np.arange(8, dtype=np.int64))
    log = races.drain_log()
    assert ("seg", "w", 0, 64) in log
    assert t.view(np.ndarray)[7] == 7


def test_tracking_toggle_controls_attach(tracking):
    assert races.tracking_enabled()
    races.enable_tracking(False)
    assert not races.tracking_enabled()


# ----------------------------------------------------------------------
# End-to-end through ProcessBackend.map_tasks
# ----------------------------------------------------------------------

@pytest.mark.process_backend
@needs_fork
def test_backend_disjoint_kernel_passes(tracking):
    be = ProcessBackend(num_workers=2, min_items=0)
    try:
        view, h = be.pool.take("ok", 16, np.int64)
        view[:] = 0
        res = be.map_tasks(_w_disjoint, [(h, 0, 8), (h, 8, 16)])
        assert res == [8, 8]
        assert np.array_equal(view, np.arange(16, dtype=np.int64))
    finally:
        be.close()


@pytest.mark.process_backend
@needs_fork
def test_backend_catches_overlapping_partition(tracking):
    be = ProcessBackend(num_workers=2, min_items=0)
    try:
        _view, h = be.pool.take("bad", 16, np.int64)
        with pytest.raises(PartitionOverlapError, match="partitions must be disjoint"):
            be.map_tasks(_w_overlapping, [(h, 0, 8), (h, 8, 16)])
    finally:
        be.close()


@pytest.mark.process_backend
@needs_fork
def test_backend_catches_stale_read(tracking):
    be = ProcessBackend(num_workers=2, min_items=0)
    try:
        view, h = be.pool.take("stale", 16, np.int64)
        view[:] = 0
        with pytest.raises(StaleReadError, match="schedule-dependent"):
            be.map_tasks(_w_stale_read, [(h, 0, 8, 8, 16), (h, 8, 16, 0, 8)])
    finally:
        be.close()


@pytest.mark.process_backend
@needs_fork
def test_backend_shared_readonly_input_is_fine(tracking):
    be = ProcessBackend(num_workers=2, min_items=0)
    try:
        out_view, out_h = be.pool.take("rout", 4, np.int64)
        out_view[:] = 0
        _in_view, in_h = be.pool.take("rin", 8, np.int64)
        _in_view[:] = 1
        be.map_tasks(
            _w_read_shared_input, [(out_h, in_h, 0, 2), (out_h, in_h, 2, 4)]
        )
        assert np.array_equal(out_view, np.full(4, 8, dtype=np.int64))
    finally:
        be.close()


def test_inline_fallback_detects_on_one_core(tracking, monkeypatch):
    """The detector needs no real interleaving: with the pool disabled the
    tasks run sequentially on the coordinator and the overlap still fails."""
    be = ProcessBackend(num_workers=2, min_items=0)
    monkeypatch.setattr(ProcessBackend, "_ensure_executor", lambda self, n: None)
    try:
        with pytest.warns(RuntimeWarning, match="running tasks inline"):
            _view, h = be.pool.take("inline", 16, np.int64)
            with pytest.raises(PartitionOverlapError):
                be.map_tasks(_w_overlapping, [(h, 0, 8), (h, 8, 16)])
    finally:
        be.close()


def test_tracking_off_keeps_plain_views():
    races.reset_tracking()
    races.enable_tracking(False)
    be = ProcessBackend(num_workers=2, min_items=0)
    try:
        _view, h = be.pool.take("plain", 8, np.int64)
        arr = attach(h)
        assert not isinstance(arr, TrackedArray)
    finally:
        be.close()
        races.reset_tracking()


# ----------------------------------------------------------------------
# Shipped kernels stay race-clean with bit-identical results
# ----------------------------------------------------------------------

@pytest.mark.process_backend
@needs_fork
def test_shipped_kernels_race_clean_and_bit_identical(tracking):
    from repro.equitruss.pipeline import build_index
    from repro.graph import CSRGraph
    from repro.graph.generators import barabasi_albert_graph

    graph = CSRGraph.from_edgelist(barabasi_albert_graph(150, 4, seed=3))

    def build(track):
        races.enable_tracking(track)
        be = ProcessBackend(num_workers=2, min_items=1)
        ctx = ExecutionContext(backend=be, num_workers=2)
        try:
            return build_index(graph, ctx=ctx).index
        finally:
            ctx.close()

    plain = build(False)
    tracked = build(True)
    assert np.array_equal(plain.trussness, tracked.trussness)
    assert np.array_equal(plain.edge_supernode, tracked.edge_supernode)
    assert np.array_equal(plain.superedges, tracked.superedges)
