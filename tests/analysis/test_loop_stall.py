"""Unit tests for the event-loop stall detector (repro.analysis.stall).

The live end-to-end tests (seeded stall through a real FrontendThread)
live in ``tests/serve/test_frontend_stall.py``; here the watchdog is
driven against plain ``asyncio.run`` loops.
"""

import asyncio
import asyncio.events
import time

import pytest

from repro.analysis.stall import (
    DEFAULT_THRESHOLD_MS,
    LOOP_CHECK_ENV,
    LOOP_THRESHOLD_ENV,
    LoopStallWatchdog,
    loop_check_enabled,
    loop_check_strict,
    loop_threshold_ms,
    maybe_watchdog,
)
from repro.errors import LoopStallError
from repro.obs.metrics import MetricsRegistry, use_registry


def run_loop_with_watchdog(watchdog, blocking_s=0.0, spins=1):
    """Install inside a fresh loop, optionally block one callback."""

    async def scenario():
        watchdog.install()
        await asyncio.sleep(0)
        if blocking_s:
            time.sleep(blocking_s)
        for _ in range(spins):
            await asyncio.sleep(0)

    try:
        asyncio.run(scenario())
    finally:
        watchdog.uninstall()
    return watchdog


def test_blocking_callback_is_recorded():
    w = run_loop_with_watchdog(
        LoopStallWatchdog(threshold_ms=30.0), blocking_s=0.1
    )
    assert w.stalls
    assert w.stalls[0].elapsed_ms >= 30.0
    # the sampler usually catches the offender mid-block; when it does,
    # the stack names the blocking line
    stack = w.stalls[0].stack
    assert stack == "" or "time.sleep" in stack
    assert "ms in" in w.stalls[0].format()
    w.check()  # non-strict: recorded, not fatal


def test_strict_mode_raises_on_check():
    w = run_loop_with_watchdog(
        LoopStallWatchdog(threshold_ms=30.0, strict=True), blocking_s=0.1
    )
    with pytest.raises(LoopStallError, match="stalled"):
        w.check()


def test_busy_but_healthy_loop_is_silent():
    """Thousands of fast callbacks never trip the per-callback timer."""
    w = run_loop_with_watchdog(
        LoopStallWatchdog(threshold_ms=50.0, strict=True), spins=500
    )
    assert w.stalls == []
    w.check()


def test_stalls_observe_the_given_metric():
    registry = MetricsRegistry()
    w = LoopStallWatchdog(
        threshold_ms=20.0, metric="repro.serve.frontend.loop_stall_ms"
    )
    with use_registry(registry):
        run_loop_with_watchdog(w, blocking_s=0.08)
    assert w.stalls
    summary = registry.as_dict()["repro.serve.frontend.loop_stall_ms"]
    assert summary["count"] >= 1
    assert summary["max"] >= 20.0


def test_uninstall_restores_handle_run():
    orig = asyncio.events.Handle._run
    w = LoopStallWatchdog(threshold_ms=10.0).install()
    assert asyncio.events.Handle._run is not orig
    w.uninstall()
    assert asyncio.events.Handle._run is orig


def test_env_parsing(monkeypatch):
    monkeypatch.delenv(LOOP_CHECK_ENV, raising=False)
    monkeypatch.delenv(LOOP_THRESHOLD_ENV, raising=False)
    assert not loop_check_enabled()
    assert maybe_watchdog() is None
    assert loop_threshold_ms() == DEFAULT_THRESHOLD_MS
    for falsy in ("0", "false", "off", "no"):
        monkeypatch.setenv(LOOP_CHECK_ENV, falsy)
        assert not loop_check_enabled()
    monkeypatch.setenv(LOOP_CHECK_ENV, "1")
    assert loop_check_enabled() and not loop_check_strict()
    monkeypatch.setenv(LOOP_CHECK_ENV, "strict")
    assert loop_check_enabled() and loop_check_strict()
    monkeypatch.setenv(LOOP_THRESHOLD_ENV, "125")
    assert loop_threshold_ms() == 125.0
    monkeypatch.setenv(LOOP_THRESHOLD_ENV, "junk")
    assert loop_threshold_ms() == DEFAULT_THRESHOLD_MS
    monkeypatch.setenv(LOOP_THRESHOLD_ENV, "-5")
    assert loop_threshold_ms() == DEFAULT_THRESHOLD_MS


def test_maybe_watchdog_follows_the_env(monkeypatch):
    monkeypatch.setenv(LOOP_CHECK_ENV, "strict")
    monkeypatch.setenv(LOOP_THRESHOLD_ENV, "75")
    w = maybe_watchdog(metric="repro.serve.frontend.loop_stall_ms")
    assert w is not None
    try:
        assert w.strict
        assert w.threshold_ms == 75.0
        assert w.metric == "repro.serve.frontend.loop_stall_ms"
    finally:
        w.uninstall()
