"""Unit tests for the AST contract linter (repro.analysis).

One positive (violating) and one negative (conforming) fixture per rule
REP001-REP005, plus suppression pragmas, the baseline mechanism, and the
CLI exit codes. Fixture modules are written under a synthetic
``src/repro/<pkg>/`` tree so package-scoped rules see the right package.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Baseline, run_lint
from repro.analysis.__main__ import main as lint_main
from repro.analysis.engine import DEFAULT_BASELINE_NAME

REPO_ROOT = Path(__file__).resolve().parents[2]


def write_module(tmp_path, pkg, code, name="mod.py"):
    d = tmp_path / "src" / "repro" / pkg
    d.mkdir(parents=True, exist_ok=True)
    f = d / name
    f.write_text(textwrap.dedent(code))
    return f


def lint(tmp_path, pkg, code):
    f = write_module(tmp_path, pkg, code)
    return run_lint([f], root=tmp_path)


def rule_ids(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# REP001 — process-kernel purity
# ----------------------------------------------------------------------

def test_rep001_flags_lambda_and_global_mutation(tmp_path):
    findings = lint(tmp_path, "truss", """\
        CACHE = {}

        def _w_bad(h):
            CACHE[h] = 1
            return h

        def run(be, tasks):
            return be.map_tasks(lambda t: t, tasks)
    """)
    assert rule_ids(findings).count("REP001") == 2
    messages = " ".join(f.message for f in findings)
    assert "lambda" in messages and "CACHE" in messages


def test_rep001_flags_bound_method_and_nested_def(tmp_path):
    findings = lint(tmp_path, "truss", """\
        def run(be, tasks):
            def inner(t):
                return t
            be.map_tasks(inner, tasks)
            return be.map_tasks(be.helper, tasks)
    """)
    assert rule_ids(findings).count("REP001") == 2


def test_rep001_clean_module_level_worker(tmp_path):
    findings = lint(tmp_path, "truss", """\
        from repro.parallel.shm import attach

        def _w_ok(h, lo, hi):
            out = attach(h)
            out[lo:hi] = 0
            return hi - lo

        def run(be, tasks):
            return be.map_tasks(_w_ok, tasks)
    """)
    assert "REP001" not in rule_ids(findings)


# ----------------------------------------------------------------------
# REP002 — no cross-process atomics
# ----------------------------------------------------------------------

def test_rep002_flags_atomics_in_worker(tmp_path):
    findings = lint(tmp_path, "triangles", """\
        from repro.parallel.atomics import AtomicArray

        def _w_bad(h, n):
            acc = AtomicArray(n)
            return acc
    """)
    assert "REP002" in rule_ids(findings)


def test_rep002_allows_atomics_outside_workers(tmp_path):
    findings = lint(tmp_path, "triangles", """\
        from repro.parallel.atomics import AtomicArray

        def threaded_path(n):
            return AtomicArray(n)
    """)
    assert "REP002" not in rule_ids(findings)


# ----------------------------------------------------------------------
# REP003 — ctx threading
# ----------------------------------------------------------------------

def test_rep003_flags_dropped_ctx_and_bare_context(tmp_path):
    findings = lint(tmp_path, "cc", """\
        from repro.parallel.context import ExecutionContext

        def helper(x, ctx=None):
            return x

        def entry(g, ctx=None):
            bad = ExecutionContext()
            return helper(g)
    """)
    ids = rule_ids(findings)
    assert ids.count("REP003") == 2


def test_rep003_clean_when_ctx_forwarded(tmp_path):
    findings = lint(tmp_path, "cc", """\
        def helper(x, ctx=None):
            return x

        def entry(g, ctx=None):
            return helper(g, ctx=ctx)

        def positional(g, ctx=None):
            return helper(g, ctx)
    """)
    assert "REP003" not in rule_ids(findings)


def test_rep003_ignores_non_kernel_packages(tmp_path):
    findings = lint(tmp_path, "utils", """\
        from repro.parallel.context import ExecutionContext

        def make():
            return ExecutionContext()
    """)
    assert "REP003" not in rule_ids(findings)


# ----------------------------------------------------------------------
# REP004 — span/metric hygiene
# ----------------------------------------------------------------------

def test_rep004_flags_dynamic_and_offnamespace_names(tmp_path):
    findings = lint(tmp_path, "serve", """\
        from repro.obs import metrics

        def publish(name):
            metrics.inc(name, 1)
            metrics.set_gauge("wrong.namespace", 2)
    """)
    assert rule_ids(findings).count("REP004") == 2


def test_rep004_accepts_literals_and_module_constants(tmp_path):
    findings = lint(tmp_path, "serve", """\
        from repro.obs import metrics

        GAUGE = "repro.serve.depth"

        def publish(ctx):
            metrics.inc("repro.serve.hits", 1)
            metrics.set_gauge(GAUGE, 2)
            with ctx.region("repro.serve.query"):
                pass
    """)
    assert "REP004" not in rule_ids(findings)


def test_rep004_flags_unbalanced_timer(tmp_path):
    findings = lint(tmp_path, "serve", """\
        from repro.utils.timing import Timer

        def leaky():
            t = Timer()
            t.start()
            return t

        def balanced():
            t = Timer()
            t.start()
            t.stop()
            return t.elapsed
    """)
    rep4 = [f for f in findings if f.rule == "REP004"]
    assert len(rep4) == 1 and "leaky" in rep4[0].message


# ----------------------------------------------------------------------
# REP005 — key-dtype safety
# ----------------------------------------------------------------------

def test_rep005_flags_unguarded_key_arithmetic(tmp_path):
    findings = lint(tmp_path, "equitruss", """\
        def pair_keys(u, v, n):
            return u * n + v
    """)
    assert "REP005" in rule_ids(findings)


def test_rep005_accepts_guarded_forms(tmp_path):
    findings = lint(tmp_path, "equitruss", """\
        import numpy as np

        def cast_inline(u, v, n):
            return u.astype(np.int64) * n + v

        def cast_scalar(u, v, n):
            return u * np.int64(n) + v

        def guarded_local(u, v, n):
            span = np.int64(n)
            return u * span + v

        def policy(u, v, n, kd):
            return kd.type(u) * n + v

        def scalar_math(x):
            return x * 2 + 1
    """)
    assert "REP005" not in rule_ids(findings)


def test_rep005_flags_module_level_key_arithmetic(tmp_path):
    """Key builds outside any function body (constants, class-level
    expressions) are scanned too — the graph/ ingest path builds keys in
    module scope in places."""
    findings = lint(tmp_path, "graph", """\
        import numpy as np

        U = np.arange(4)
        V = np.arange(4)
        N_V = 70000
        KEYS = U * N_V + V
    """)
    assert "REP005" in rule_ids(findings)


def test_rep005_module_level_guards_accepted(tmp_path):
    findings = lint(tmp_path, "graph", """\
        import numpy as np

        U = np.arange(4)
        V = np.arange(4)
        SPAN = np.int64(70000)
        KEYS = U * SPAN + V
        INLINE = U * np.int64(70000) + V
    """)
    assert "REP005" not in rule_ids(findings)


# ----------------------------------------------------------------------
# Suppression pragmas and baseline
# ----------------------------------------------------------------------

def test_pragma_suppresses_on_the_offending_line(tmp_path):
    findings = lint(tmp_path, "equitruss", """\
        def pair_keys(u, v, n):
            return u * n + v  # repro: allow(REP005)
    """)
    assert findings == []


def test_pragma_only_covers_named_rules(tmp_path):
    findings = lint(tmp_path, "equitruss", """\
        def pair_keys(u, v, n):
            return u * n + v  # repro: allow(REP004)
    """)
    assert "REP005" in rule_ids(findings)


def test_baseline_grandfathers_and_survives_line_moves(tmp_path):
    f = write_module(tmp_path, "equitruss", """\
        def pair_keys(u, v, n):
            return u * n + v
    """)
    findings = run_lint([f], root=tmp_path)
    baseline = Baseline.from_findings(findings, note="legacy")

    # same violation, moved two lines down: fingerprint still matches
    f.write_text("X = 1\nY = 2\n" + f.read_text())
    moved = run_lint([f], root=tmp_path)
    new, stale = baseline.split(moved)
    assert new == [] and stale == []

    # a second, different violation is new
    f.write_text(f.read_text() + "\ndef more(a, b, m):\n    return a * m + b\n")
    new, _stale = baseline.split(run_lint([f], root=tmp_path))
    assert len(new) == 1


def test_baseline_survives_file_rename(tmp_path):
    """A grandfathered finding stays grandfathered when its file moves.

    The exact fingerprint embeds the repo-relative path, so a rename
    misses it — the content fallback (rule + snippet, matched
    one-to-one) must pick it up instead of resurfacing the finding.
    """
    f = write_module(tmp_path, "equitruss", """\
        def pair_keys(u, v, n):
            return u * n + v
    """)
    baseline = Baseline.from_findings(run_lint([f], root=tmp_path))

    renamed = f.with_name("keys.py")
    f.rename(renamed)
    new, stale = baseline.split(run_lint([renamed], root=tmp_path))
    assert new == [] and stale == []


def test_baseline_rename_fallback_is_one_to_one(tmp_path):
    """Content matching consumes one stale entry per finding, no more.

    One baseline entry must absorb exactly one of two identical
    violations in the renamed file — the duplicate is a real new
    finding, not grandfathered by association.
    """
    f = write_module(tmp_path, "equitruss", """\
        def pair_keys(u, v, n):
            return u * n + v
    """)
    baseline = Baseline.from_findings(run_lint([f], root=tmp_path))

    renamed = f.with_name("keys.py")
    f.rename(renamed)
    renamed.write_text(
        renamed.read_text()
        + "\n\ndef pair_keys2(u, v, n):\n    return u * n + v\n"
    )
    new, stale = baseline.split(run_lint([renamed], root=tmp_path))
    assert len(new) == 1 and stale == []


def test_baseline_reports_stale_entries(tmp_path):
    f = write_module(tmp_path, "equitruss", """\
        def pair_keys(u, v, n):
            return u * n + v
    """)
    baseline = Baseline.from_findings(run_lint([f], root=tmp_path))
    f.write_text("def pair_keys(u, v, n):\n    return (u, v, n)\n")
    new, stale = baseline.split(run_lint([f], root=tmp_path))
    assert new == [] and len(stale) == 1


# ----------------------------------------------------------------------
# CLI (python -m repro.analysis)
# ----------------------------------------------------------------------

def test_cli_exit_codes_on_fixture_tree(tmp_path, capsys):
    bad = write_module(tmp_path, "equitruss", """\
        def pair_keys(u, v, n):
            return u * n + v
    """)
    assert lint_main([str(bad)]) == 1
    assert "REP005" in capsys.readouterr().out

    good = write_module(tmp_path, "serve", "def f():\n    return 1\n")
    assert lint_main([str(good)]) == 0


def test_cli_write_then_compare_baseline(tmp_path, capsys):
    bad = write_module(tmp_path, "equitruss", """\
        def pair_keys(u, v, n):
            return u * n + v
    """)
    bpath = tmp_path / DEFAULT_BASELINE_NAME
    assert lint_main([str(bad), "--write-baseline", str(bpath)]) == 0
    doc = json.loads(bpath.read_text())
    assert doc["version"] == 1 and len(doc["findings"]) == 1

    # grandfathered: exit 0; without the baseline: exit 1
    assert lint_main([str(bad), "--baseline", str(bpath)]) == 0
    assert lint_main([str(bad)]) == 1
    capsys.readouterr()


def test_cli_json_format(tmp_path, capsys):
    bad = write_module(tmp_path, "equitruss", """\
        def pair_keys(u, v, n):
            return u * n + v
    """)
    assert lint_main([str(bad), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["findings"][0]["rule"] == "REP005"
    assert doc["findings"][0]["fingerprint"]


def test_cli_rule_selection_and_listing(tmp_path, capsys):
    bad = write_module(tmp_path, "equitruss", """\
        def pair_keys(u, v, n):
            return u * n + v
    """)
    assert lint_main([str(bad), "--rules", "REP003"]) == 0
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in (
        "REP001", "REP002", "REP003", "REP004", "REP005",
        "REP006", "REP007", "REP008", "REP009", "REP010",
    ):
        assert rid in out
    # unknown / empty rule specs are usage errors (exit 2), and the
    # message names every valid id so the caller can self-correct
    assert lint_main([str(bad), "--rules", "REP999"]) == 2
    err = capsys.readouterr().err
    assert "REP999" in err
    assert "REP001" in err and "REP010" in err
    assert lint_main([str(bad), "--rules", ",,,"]) == 2


def test_real_tree_is_clean():
    """The shipped sources must lint clean (the CI contract)."""
    src = REPO_ROOT / "src" / "repro"
    assert run_lint([src], root=REPO_ROOT) == []
