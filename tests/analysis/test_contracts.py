"""Fixture tests for the cross-layer contract rules (REP006-REP010).

One positive (violating) and one negative (conforming) fixture per
rule, exercised through ``run_lint`` over a synthetic ``src/repro``
tree — the same path the CI job takes — so extraction, call-graph
resolution, catalogue parsing, and pragma suppression are all covered
end to end.
"""

import textwrap
from pathlib import Path

from repro.analysis import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def write_module(tmp_path, pkg, code, name="mod.py"):
    d = tmp_path / "src" / "repro" / pkg
    d.mkdir(parents=True, exist_ok=True)
    f = d / name
    f.write_text(textwrap.dedent(code))
    return f


def lint_tree(tmp_path):
    return run_lint([tmp_path / "src" / "repro"], root=tmp_path)


def by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


# ----------------------------------------------------------------------
# REP006 — blocking calls reachable from async bodies
# ----------------------------------------------------------------------

def test_rep006_direct_blocking_call_in_coroutine(tmp_path):
    write_module(tmp_path, "serve", """\
        import time

        async def handler(frame):
            time.sleep(0.01)
            return frame
    """)
    findings = by_rule(lint_tree(tmp_path), "REP006")
    assert len(findings) == 1
    assert "time.sleep" in findings[0].message
    assert "handler" in findings[0].message


def test_rep006_blocking_reached_through_sync_helpers(tmp_path):
    """A coroutine calling a sync chain that opens a file is flagged
    with the witness chain, not just the leaf call."""
    write_module(tmp_path, "serve", """\
        def read_all(path):
            with open(path) as fh:
                return fh.read()

        def load(path):
            return read_all(path)

        async def handler(path):
            return load(path)
    """)
    findings = by_rule(lint_tree(tmp_path), "REP006")
    assert len(findings) == 1
    assert "open" in findings[0].message
    assert "load -> read_all" in findings[0].message


def test_rep006_bare_lock_acquire_flagged_awaited_is_not(tmp_path):
    write_module(tmp_path, "serve", """\
        async def bad(lock):
            lock.acquire()
            lock.release()

        async def good(lock):
            await lock.acquire()
            lock.release()
    """)
    findings = by_rule(lint_tree(tmp_path), "REP006")
    assert len(findings) == 1
    assert "acquire" in findings[0].message
    assert "bad" in findings[0].message


def test_rep006_negative_async_idioms_are_clean(tmp_path):
    write_module(tmp_path, "serve", """\
        import asyncio

        def work(x):
            return x + 1

        async def handler(x):
            await asyncio.sleep(0)
            return await asyncio.to_thread(work, x)
    """)
    assert by_rule(lint_tree(tmp_path), "REP006") == []


def test_rep006_scoped_to_the_serve_package(tmp_path):
    """Only the serving layer runs an event loop; async helpers
    elsewhere may block (they run under asyncio.run in scripts)."""
    write_module(tmp_path, "store", """\
        import time

        async def maintenance():
            time.sleep(0.01)
    """)
    assert by_rule(lint_tree(tmp_path), "REP006") == []


def test_rep006_pragma_suppresses(tmp_path):
    write_module(tmp_path, "serve", """\
        import time

        async def handler(frame):
            time.sleep(0.01)  # repro: allow(REP006)
            return frame
    """)
    assert by_rule(lint_tree(tmp_path), "REP006") == []


# ----------------------------------------------------------------------
# REP007 — fire-and-forget task/timer handles
# ----------------------------------------------------------------------

def test_rep007_dropped_handles_flagged(tmp_path):
    write_module(tmp_path, "serve", """\
        import asyncio

        async def kick(coro_fn):
            asyncio.create_task(coro_fn())

        def schedule(loop, cb):
            loop.call_later(0.1, cb)
    """)
    findings = by_rule(lint_tree(tmp_path), "REP007")
    assert len(findings) == 2
    messages = "\n".join(f.message for f in findings)
    assert "create_task" in messages and "call_later" in messages


def test_rep007_kept_handles_are_clean(tmp_path):
    write_module(tmp_path, "serve", """\
        import asyncio

        async def kick(tasks, coro_fn):
            task = asyncio.create_task(coro_fn())
            tasks.add(task)
            await task

        def schedule(loop, cb):
            return loop.call_later(0.1, cb)
    """)
    assert by_rule(lint_tree(tmp_path), "REP007") == []


# ----------------------------------------------------------------------
# REP008 — wire-protocol conformance
# ----------------------------------------------------------------------

PROTOCOL_OK = """\
    OP_READY = "ready"
    FRONTEND_OPS = ("query", "ping")
    SHARD_OPS = ("batch", "ping", "shutdown")
    ERROR_TYPES = {"bad_request": ValueError, "internal": RuntimeError}
"""


def test_rep008_shard_op_missing_from_protocol_table(tmp_path):
    """The seeded-violation scenario: an op added to the shard dispatch
    but not to protocol.SHARD_OPS fails the lint."""
    write_module(tmp_path, "serve", PROTOCOL_OK, name="protocol.py")
    write_module(tmp_path, "serve", """\
        def handle(op):
            if op == "batch":
                return 1
            if op == "ping":
                return 2
            if op == "snapshot":
                return 3

        def run(obj):
            if obj.get("op") == "shutdown":
                return None
    """, name="shard.py")
    findings = by_rule(lint_tree(tmp_path), "REP008")
    assert len(findings) == 1
    assert "'snapshot'" in findings[0].message
    assert findings[0].path.endswith("shard.py")


def test_rep008_declared_op_never_handled(tmp_path):
    write_module(tmp_path, "serve", PROTOCOL_OK, name="protocol.py")
    write_module(tmp_path, "serve", """\
        def handle(op):
            if op == "batch":
                return 1
            if op == "ping":
                return 2
    """, name="shard.py")
    findings = by_rule(lint_tree(tmp_path), "REP008")
    assert len(findings) == 1
    assert "'shutdown'" in findings[0].message
    # the anchor is the table declaration, so the fix lands in protocol.py
    assert findings[0].path.endswith("protocol.py")


def test_rep008_frontend_sends_unknown_shard_op(tmp_path):
    write_module(tmp_path, "serve", PROTOCOL_OK, name="protocol.py")
    write_module(tmp_path, "serve", """\
        def build(payload):
            return {"op": "mystery", "payload": payload}

        async def dispatch(op, frame):
            if op == "query":
                return frame
            if op == "ping":
                return frame
    """, name="frontend.py")
    findings = by_rule(lint_tree(tmp_path), "REP008")
    assert len(findings) == 1
    assert "'mystery'" in findings[0].message


def test_rep008_error_response_outside_taxonomy(tmp_path):
    write_module(tmp_path, "serve", PROTOCOL_OK, name="protocol.py")
    write_module(tmp_path, "serve", """\
        def fail(rid):
            return error_response(rid, "no_such_type")
    """, name="frontend_errors.py")
    findings = by_rule(lint_tree(tmp_path), "REP008")
    assert len(findings) == 1
    assert "'no_such_type'" in findings[0].message


def test_rep008_missing_tables_is_itself_a_finding(tmp_path):
    write_module(tmp_path, "serve", """\
        MAX_FRAME_BYTES = 1 << 20
    """, name="protocol.py")
    findings = by_rule(lint_tree(tmp_path), "REP008")
    assert len(findings) == 1
    assert "source of truth" in findings[0].message


def test_rep008_conforming_peers_are_clean(tmp_path):
    write_module(tmp_path, "serve", PROTOCOL_OK, name="protocol.py")
    write_module(tmp_path, "serve", """\
        def handle(op):
            if op == "batch":
                return 1
            if op == "ping":
                return 2

        def run(obj):
            if obj.get("op") == "shutdown":
                return None

        def ready_frame():
            return {"op": "ready"}
    """, name="shard.py")
    write_module(tmp_path, "serve", """\
        def forward(payload):
            return {"op": "batch", "payload": payload}

        async def dispatch(op, frame):
            if op == "query":
                return frame
            if op == "ping":
                return frame
    """, name="frontend.py")
    write_module(tmp_path, "serve", """\
        class Client:
            def ask(self, vertex):
                return self.call("query", vertex=vertex)

            def ping(self):
                return self.send("ping")
    """, name="client.py")
    assert by_rule(lint_tree(tmp_path), "REP008") == []


# ----------------------------------------------------------------------
# REP009 — metric names vs the docs catalogue
# ----------------------------------------------------------------------

def write_catalogue(tmp_path, rows):
    doc = tmp_path / "docs"
    doc.mkdir(exist_ok=True)
    lines = [
        "### Metric names",
        "",
        "| name | kind | unit | emitting module |",
        "| --- | --- | --- | --- |",
        *rows,
        "",
        "### Trace file schema",
        "",
    ]
    (doc / "architecture.md").write_text("\n".join(lines))


def test_rep009_undocumented_and_dead_and_grammar(tmp_path):
    write_catalogue(tmp_path, [
        "| `repro.serve.good` | counter | events | `serve` |",
        "| `repro.serve.dead` | counter | events | `serve` |",
    ])
    write_module(tmp_path, "serve", """\
        from repro.obs import metrics

        def run():
            metrics.inc("repro.serve.good")
            metrics.inc("repro.serve.undocumented")
            metrics.observe("repro.serve.BadName", 1.0)
    """)
    findings = by_rule(lint_tree(tmp_path), "REP009")
    messages = "\n".join(f.message for f in findings)
    assert len(findings) == 3
    assert "repro.serve.undocumented" in messages
    assert "repro.serve.dead" in messages and "dead docs row" in messages
    assert "repro.serve.BadName" in messages and "grammar" in messages
    # the dead-row finding points into the docs, not the source
    dead = [f for f in findings if "dead docs row" in f.message]
    assert dead[0].path == "docs/architecture.md"


def test_rep009_alternation_rows_and_dynamic_mentions(tmp_path):
    """`/`-joined rows expand; a name reachable only through a constant
    table (dynamic emit) still counts as alive."""
    write_catalogue(tmp_path, [
        "| `repro.serve.hits` / `.misses` | counter | events | `serve` |",
        "| `repro.serve.dyn` | gauge | bytes | `serve` |",
    ])
    write_module(tmp_path, "serve", """\
        from repro.obs import metrics

        SIZES = {"repro.serve.dyn": 0}

        def run():
            metrics.inc("repro.serve.hits")
            metrics.inc("repro.serve.misses")
    """)
    assert by_rule(lint_tree(tmp_path), "REP009") == []


def test_rep009_dead_rows_gated_on_linted_modules(tmp_path):
    """A partial lint (serve only) must not flag rows owned by modules
    outside the run — only full-tree runs see the whole catalogue."""
    write_catalogue(tmp_path, [
        "| `repro.serve.good` | counter | events | `serve` |",
        "| `repro.truss.ghost` | counter | rounds | `truss.decompose` |",
    ])
    write_module(tmp_path, "serve", """\
        from repro.obs import metrics

        def run():
            metrics.inc("repro.serve.good")
    """)
    assert by_rule(lint_tree(tmp_path), "REP009") == []


# ----------------------------------------------------------------------
# REP010 — store section names vs the format constant table
# ----------------------------------------------------------------------

FORMAT_OK = """\
    STORE_FORMAT_VERSION = 3

    REQUIRED_SECTIONS = (
        "graph.nodes",
        "graph.edges",
    )
    EDGE_ORDER_SECTION = "graph.edge_order"
"""


def test_rep010_ad_hoc_section_literal_flagged(tmp_path):
    write_module(tmp_path, "store", FORMAT_OK, name="format.py")
    write_module(tmp_path, "store", """\
        def sections():
            return ["graph.nodes", "graph.rogue", "graph.edge_order"]
    """, name="writer.py")
    findings = by_rule(lint_tree(tmp_path), "REP010")
    assert len(findings) == 1
    assert "'graph.rogue'" in findings[0].message


def test_rep010_docstrings_and_known_names_are_clean(tmp_path):
    write_module(tmp_path, "store", FORMAT_OK, name="format.py")
    write_module(tmp_path, "store", """\
        def doc():
            \"\"\"graph.sections\"\"\"
            return ("graph.nodes", "graph.edges")
    """, name="writer.py")
    assert by_rule(lint_tree(tmp_path), "REP010") == []


def test_rep010_scoped_to_the_store_package(tmp_path):
    write_module(tmp_path, "store", FORMAT_OK, name="format.py")
    write_module(tmp_path, "serve", """\
        def label():
            return "graph.rogue"
    """)
    assert by_rule(lint_tree(tmp_path), "REP010") == []
