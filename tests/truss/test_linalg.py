"""Linear-algebra truss decomposition cross-validation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, build_graph
from repro.graph.generators import complete_graph, erdos_renyi_gnm, paper_example_graph
from repro.truss import truss_decomposition
from repro.truss.linalg import truss_decomposition_linalg


def test_matches_peeling_on_paper_example():
    g = CSRGraph.from_edgelist(paper_example_graph())
    a = truss_decomposition(g)
    b = truss_decomposition_linalg(g)
    assert np.array_equal(a.trussness, b.trussness)
    assert np.array_equal(a.support, b.support)


def test_matches_peeling_on_random_graphs():
    for seed in range(4):
        g = CSRGraph.from_edgelist(erdos_renyi_gnm(30, 130, seed=seed))
        assert np.array_equal(
            truss_decomposition(g).trussness,
            truss_decomposition_linalg(g).trussness,
        )


def test_complete_graph():
    g = CSRGraph.from_edgelist(complete_graph(6))
    assert np.all(truss_decomposition_linalg(g).trussness == 6)


def test_empty_and_triangle_free():
    assert truss_decomposition_linalg(build_graph([], [])).num_edges == 0
    g = build_graph([0, 1, 2], [1, 2, 3])
    d = truss_decomposition_linalg(g)
    assert np.all(d.trussness == 2)
    assert np.all(d.support == 0)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_linalg_equals_peeling(seed):
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(15, 45, seed=seed))
    assert np.array_equal(
        truss_decomposition(g).trussness,
        truss_decomposition_linalg(g).trussness,
    )
