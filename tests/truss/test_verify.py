"""Unit tests for the truss verifier."""

import numpy as np
import pytest

from repro.errors import IndexIntegrityError, InvalidParameterError
from repro.graph import CSRGraph
from repro.graph.generators import complete_graph, erdos_renyi_gnm
from repro.truss import truss_decomposition, verify_trussness
from repro.truss.decompose import TrussDecomposition
from repro.truss.verify import maximal_k_truss


def test_verify_accepts_correct_decomposition():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(30, 150, seed=2))
    verify_trussness(g, truss_decomposition(g))


def test_verify_rejects_wrong_length():
    g = CSRGraph.from_edgelist(complete_graph(4))
    bad = TrussDecomposition(
        trussness=np.array([4], dtype=np.int64),
        support=np.array([2], dtype=np.int64),
        peel_rounds=1,
    )
    with pytest.raises(IndexIntegrityError):
        verify_trussness(g, bad)


def test_verify_rejects_inflated_trussness():
    g = CSRGraph.from_edgelist(complete_graph(4))
    d = truss_decomposition(g)
    bad = TrussDecomposition(
        trussness=d.trussness + 1, support=d.support, peel_rounds=d.peel_rounds
    )
    with pytest.raises(IndexIntegrityError):
        verify_trussness(g, bad)


def test_verify_rejects_deflated_trussness():
    g = CSRGraph.from_edgelist(complete_graph(5))
    d = truss_decomposition(g)
    tau = d.trussness.copy()
    tau[0] = 3  # understate one edge
    bad = TrussDecomposition(trussness=tau, support=d.support, peel_rounds=1)
    with pytest.raises(IndexIntegrityError):
        verify_trussness(g, bad)


def test_verify_rejects_below_two():
    g = CSRGraph.from_edgelist(complete_graph(4))
    d = truss_decomposition(g)
    tau = d.trussness.copy()
    tau[0] = 1
    with pytest.raises(IndexIntegrityError):
        verify_trussness(
            g, TrussDecomposition(trussness=tau, support=d.support, peel_rounds=1)
        )


def test_maximal_k_truss_monotone():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(25, 120, seed=5))
    prev = maximal_k_truss(g, 3)
    for k in (4, 5, 6):
        cur = maximal_k_truss(g, k)
        assert np.all(prev[cur])  # k-truss ⊆ (k-1)-truss


def test_maximal_k_truss_k2_is_everything():
    g = CSRGraph.from_edgelist(erdos_renyi_gnm(10, 20, seed=0))
    assert np.all(maximal_k_truss(g, 2))


def test_maximal_k_truss_validation():
    g = CSRGraph.from_edgelist(complete_graph(3))
    with pytest.raises(InvalidParameterError):
        maximal_k_truss(g, 1)
