"""Equivalence properties of the bucketed peeler and balanced partitions.

The PKT-style bucket schedule, the legacy level-scan schedule, and the
serial reference must be bit-identical — same trussness, same support,
same number of peel rounds — on every backend, under either partition
strategy, and regardless of the index dtype. These are equality tests,
not approximate ones: the bucket queue peels exactly the
``support < k - 2`` frontier each round in ascending edge-id order,
which is the same frontier sequence the scan schedule computes.
"""

import numpy as np
import pytest

from repro.equitruss.pipeline import build_index
from repro.graph import CSRGraph
from repro.graph.generators import (
    erdos_renyi_gnm,
    paper_example_graph,
    rmat_graph,
)
from repro.parallel.context import ExecutionContext
from repro.parallel.shm import ProcessBackend, process_backend_available
from repro.triangles.enumerate import enumerate_triangles
from repro.triangles.support import compute_support
from repro.truss.decompose import truss_decomposition, truss_decomposition_serial

needs_fork = pytest.mark.skipif(
    not process_backend_available(),
    reason="fork or POSIX shared memory unavailable",
)

GRAPHS = {
    "er": lambda: erdos_renyi_gnm(300, 2600, seed=11),
    "rmat": lambda: rmat_graph(8, 8, seed=5),
    "paper": paper_example_graph,
}
VARIANTS = ("baseline", "coptimal", "afforest")


def _graph(name):
    return CSRGraph.from_edgelist(GRAPHS[name]())


def _contexts(partition="balanced"):
    yield "serial", lambda: ExecutionContext(backend="serial", partition=partition)
    yield "thread", lambda: ExecutionContext(
        backend="thread", num_workers=3, partition=partition
    )
    if process_backend_available():
        yield "process", lambda: ExecutionContext(
            backend=ProcessBackend(num_workers=3, min_items=0),
            num_workers=3,
            partition=partition,
        )


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_bucket_equals_scan_equals_serial(name):
    g = _graph(name)
    ref = truss_decomposition_serial(g)
    scan = truss_decomposition(g, peeling="scan")
    bucket = truss_decomposition(g, peeling="bucket")
    for d in (scan, bucket):
        assert np.array_equal(d.trussness, ref.trussness), name
        assert np.array_equal(d.support, ref.support), name
    assert bucket.peel_rounds == scan.peel_rounds, name
    assert bucket.level_scans == 0
    assert scan.level_scans > 0 or scan.kmax == 2


@pytest.mark.process_backend
@needs_fork
@pytest.mark.parametrize("peeling", ("bucket", "scan"))
@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_peeling_modes_bit_identical_across_backends(name, peeling):
    g = _graph(name)
    ref = truss_decomposition_serial(g)
    for label, make in _contexts():
        with make() as ctx:
            got = truss_decomposition(g, ctx=ctx, peeling=peeling)
        assert np.array_equal(got.trussness, ref.trussness), (name, label)
        assert np.array_equal(got.support, ref.support), (name, label)
        if peeling == "bucket":
            assert got.level_scans == 0, (name, label)


@pytest.mark.process_backend
@needs_fork
@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_partition_strategies_bit_identical(name):
    """``balanced`` and ``blocked`` splits feed the same ordered
    concatenation — triangles, support, and trussness cannot differ."""
    g = _graph(name)
    results = {}
    for strategy in ("balanced", "blocked"):
        for label, make in _contexts(partition=strategy):
            with make() as ctx:
                tris = enumerate_triangles(g, ctx=ctx)
                sup = compute_support(g, triangles=tris, ctx=ctx)
                tau = truss_decomposition(g, triangles=tris, ctx=ctx).trussness
            results[(strategy, label)] = (tris, sup, tau)
    (ref_tris, ref_sup, ref_tau) = results[("balanced", "serial")]
    for key, (tris, sup, tau) in results.items():
        for attr in ("e_uv", "e_uw", "e_vw"):
            assert np.array_equal(
                getattr(tris, attr), getattr(ref_tris, attr)
            ), (name, key, attr)
        assert np.array_equal(sup, ref_sup), (name, key)
        assert np.array_equal(tau, ref_tau), (name, key)


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_dtype_invariance_int32_int64(name):
    """int32-indexed and int64-indexed builds agree element-for-element
    through the fused Init and both peeling schedules."""
    edges = GRAPHS[name]()
    results = {}
    for dtype in ("int32", "int64"):
        ctx = ExecutionContext(dtype=dtype)
        g = CSRGraph.from_edgelist(edges, ctx=ctx)
        for peeling in ("bucket", "scan"):
            d = truss_decomposition(g, ctx=ctx, peeling=peeling)
            results[(dtype, peeling)] = (d.trussness, d.support, d.peel_rounds)
    ref = results[("int64", "bucket")]
    for key, (tau, sup, rounds) in results.items():
        assert np.array_equal(tau, ref[0]), (name, key)
        assert np.array_equal(sup, ref[1]), (name, key)
        assert rounds == ref[2], (name, key)


@pytest.mark.process_backend
@needs_fork
@pytest.mark.parametrize("variant", VARIANTS)
def test_index_identical_under_bucket_and_balanced(variant):
    """End-to-end: every variant builds the same index under the new
    defaults (bucket peeling + balanced partitions, process backend) as
    the serial blocked/scan legacy path."""
    g = _graph("er")
    legacy = ExecutionContext(backend="serial", partition="blocked")
    ref = build_index(g, variant, ctx=legacy).index
    with ExecutionContext(
        backend=ProcessBackend(num_workers=3, min_items=0),
        num_workers=3,
        partition="balanced",
    ) as ctx:
        got = build_index(g, variant, ctx=ctx).index
    assert got == ref, variant
