"""Unit + property tests for truss decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, build_graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_gnm,
    paper_example_graph,
    path_graph,
    planted_community_graph,
    rmat_graph,
)
from repro.errors import InvalidParameterError
from repro.parallel import ExecutionPolicy
from repro.truss import (
    k_truss_edge_mask,
    truss_decomposition,
    truss_decomposition_serial,
)
from repro.truss.verify import trussness_brute_force


def graph_of(edges):
    return CSRGraph.from_edgelist(edges)


def test_triangle_free_graphs_all_tau2():
    for edges in (path_graph(8), cycle_graph(8)):
        d = truss_decomposition(graph_of(edges))
        assert np.all(d.trussness == 2)
        assert d.kmax == 2
        assert d.k_classes().size == 0


def test_complete_graph_trussness():
    for n in (3, 4, 5, 6, 8):
        d = truss_decomposition(graph_of(complete_graph(n)))
        assert np.all(d.trussness == n)


def test_single_triangle_with_tail():
    g = build_graph([0, 0, 1, 2], [1, 2, 2, 3])
    d = truss_decomposition(g)
    tail = g.edges.edge_id(2, 3)
    assert d.trussness[tail] == 2
    for e in range(4):
        if e != tail:
            assert d.trussness[e] == 3


def test_paper_example_trussness():
    """Figure 3a publishes the trussness of all 27 edges."""
    from repro.graph.generators import PAPER_EXAMPLE_SUPERNODES

    g = graph_of(paper_example_graph())
    d = truss_decomposition(g)
    for _, (k, edge_set) in PAPER_EXAMPLE_SUPERNODES.items():
        for (a, b) in edge_set:
            assert d.trussness[g.edges.edge_id(a, b)] == k, (a, b, k)


def test_serial_matches_vectorized_random():
    for seed in range(5):
        g = graph_of(erdos_renyi_gnm(30, 140, seed=seed))
        a = truss_decomposition(g)
        b = truss_decomposition_serial(g)
        assert np.array_equal(a.trussness, b.trussness)
        assert np.array_equal(a.support, b.support)


def test_matches_brute_force_small():
    g = graph_of(erdos_renyi_gnm(14, 45, seed=1))
    d = truss_decomposition(g)
    assert np.array_equal(d.trussness, trussness_brute_force(g))


def test_matches_networkx_k_truss():
    nx = pytest.importorskip("networkx")
    g = graph_of(rmat_graph(7, 6, seed=9))
    d = truss_decomposition(g)
    nxg = g.to_networkx()
    for k in d.k_classes().tolist():
        expected = {tuple(sorted(e)) for e in nx.k_truss(nxg, k).edges()}
        mask = k_truss_edge_mask(d, k)
        got = set(g.edges.subset(mask).as_tuples())
        assert got == expected, k


def test_phi_partition():
    g = graph_of(erdos_renyi_gnm(40, 220, seed=3))
    d = truss_decomposition(g)
    seen = np.zeros(g.num_edges, dtype=int)
    for k in d.k_classes().tolist():
        seen[d.phi(k)] += 1
    # Φ_k sets partition the edges of trussness >= 3
    assert np.all(seen[d.trussness >= 3] == 1)
    assert np.all(seen[d.trussness == 2] == 0)
    assert d.truss_sizes() == {int(k): int(d.phi(k).size) for k in d.k_classes()}


def test_policy_trace_records_rounds():
    g = graph_of(complete_graph(6))
    policy = ExecutionPolicy()
    d = truss_decomposition(g, policy=policy)
    (region,) = policy.trace.regions
    assert region.name == "TrussDecomp"
    assert region.rounds == d.peel_rounds
    assert region.rounds >= 1


def test_planted_communities_have_high_trussness():
    edges, comms = planted_community_graph(3, 8, 8, p_intra=1.0, overlap=0, seed=0)
    d = truss_decomposition(graph_of(edges))
    # each planted clique of size 8 yields trussness-8 edges
    assert d.kmax == 8


def test_k_truss_edge_mask_validation():
    from repro.errors import InvalidParameterError

    g = graph_of(complete_graph(4))
    d = truss_decomposition(g)
    with pytest.raises(InvalidParameterError):
        k_truss_edge_mask(d, 1)


def test_empty_graph():
    g = build_graph([], [])
    d = truss_decomposition(g)
    assert d.num_edges == 0
    assert d.kmax == 2


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=13),
    data=st.data(),
)
def test_property_vectorized_equals_brute_force(n, data):
    max_m = n * (n - 1) // 2
    m = data.draw(st.integers(min_value=0, max_value=max_m))
    seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
    g = graph_of(erdos_renyi_gnm(n, m, seed=seed))
    d = truss_decomposition(g)
    assert np.array_equal(d.trussness, trussness_brute_force(g))
    assert np.array_equal(d.trussness, truss_decomposition_serial(g).trussness)


def test_level_skip_jumps_over_trussness_gaps():
    """A K12 (τ=12) next to a triangle (τ=3) leaves levels 4..11 empty;
    the peeler must jump straight across the gap instead of scanning
    each empty level, with identical trussness."""
    from repro.graph import build_edgelist

    k12 = complete_graph(12)
    u = np.concatenate([k12.u, np.array([12, 12, 13])])
    v = np.concatenate([k12.v, np.array([13, 14, 14])])
    g = graph_of(build_edgelist(u, v, num_vertices=15))
    ref = truss_decomposition_serial(g).trussness
    d = truss_decomposition(g, peeling="scan")
    assert np.array_equal(d.trussness, ref)
    assert d.kmax == 12
    # one-per-level scanning would cost at least kmax - 2 = 10 scans;
    # skipping pays ~2 per populated level (one empty probe, one peel)
    assert d.level_scans < d.kmax - 2
    assert d.level_scans <= 5
    # bucketed peeling jumps the same gap without any rescans at all
    b = truss_decomposition(g)
    assert np.array_equal(b.trussness, ref)
    assert b.peel_rounds == d.peel_rounds
    assert b.level_scans == 0


def test_level_skip_counts_on_dense_levels():
    # no gaps: level skipping must not change behavior on contiguous levels
    edges, _ = planted_community_graph(3, 6, 8, p_intra=0.9, overlap=1, seed=5)
    g = graph_of(edges)
    d = truss_decomposition(g, peeling="scan")
    assert np.array_equal(d.trussness, truss_decomposition_serial(g).trussness)
    assert d.level_scans >= d.k_classes().size


def test_level_scans_zero_for_bucket_positive_for_scan():
    g = graph_of(complete_graph(5))
    assert truss_decomposition_serial(g).level_scans == 0
    assert truss_decomposition(g, peeling="scan").level_scans > 0
    # the default bucketed schedule never pays a full-edge rescan
    assert truss_decomposition(g).level_scans == 0


def test_peeling_mode_validation():
    g = graph_of(complete_graph(5))
    with pytest.raises(InvalidParameterError):
        truss_decomposition(g, peeling="nope")
