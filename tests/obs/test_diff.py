"""Trace diffing: self-diff clean, regressions flagged, noise floor."""

from repro.obs.diff import diff_trace_files, diff_traces
from repro.obs.export import write_trace_jsonl
from repro.obs.trace import Tracer


def _tracer(**seconds_by_name) -> Tracer:
    tracer = Tracer()
    for name, secs in seconds_by_name.items():
        tracer.add(name, secs)
    return tracer


def test_self_diff_reports_zero_regressions():
    t = _tracer(Support=0.5, SpNode=1.0)
    diff = diff_traces(t, t)
    assert diff.ok
    assert diff.regressions == []
    assert all(e.ratio == 1.0 for e in diff.entries)


def test_regression_flagged_beyond_threshold():
    base = _tracer(SpNode=1.0, SpEdge=0.5)
    new = _tracer(SpNode=1.5, SpEdge=0.5)
    diff = diff_traces(base, new, threshold=0.10)
    assert not diff.ok
    assert [e.name for e in diff.regressions] == ["SpNode"]
    assert diff.regressions[0].ratio == 1.5
    assert "REGRESSED" in diff.format()


def test_growth_within_threshold_is_ok():
    base = _tracer(SpNode=1.0)
    new = _tracer(SpNode=1.05)
    assert diff_traces(base, new, threshold=0.10).ok


def test_min_seconds_floor_suppresses_noise():
    base = _tracer(SmGraph=0.0001)
    new = _tracer(SmGraph=0.0005)  # 5x, but far below the floor
    assert diff_traces(base, new, threshold=0.10, min_seconds=0.001).ok
    assert not diff_traces(base, new, threshold=0.10, min_seconds=0.0).ok


def test_new_span_name_counts_as_regression_when_material():
    base = _tracer(SpNode=1.0)
    new = _tracer(SpNode=1.0, Extra=0.5)
    diff = diff_traces(base, new)
    assert [e.name for e in diff.regressions] == ["Extra"]
    assert diff.regressions[0].ratio == float("inf")


def test_include_filter_limits_comparison():
    base = _tracer(SpNode=1.0, Wrapper=5.0)
    new = _tracer(SpNode=1.0, Wrapper=50.0)
    assert diff_traces(base, new, include=["SpNode"]).ok


def test_diff_trace_files_roundtrip(tmp_path):
    t = _tracer(Support=0.5, SpNode=1.0)
    path = write_trace_jsonl(t, tmp_path / "run.jsonl")
    diff = diff_trace_files(path, path)
    assert diff.ok
    assert "0 regression(s)" in diff.format()
