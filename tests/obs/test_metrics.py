"""Metrics registry: instruments, naming, active-registry helpers."""

import pytest

from repro.errors import InvalidParameterError
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    inc,
    observe,
    set_gauge,
    set_gauge_max,
    use_registry,
)


def test_counter_accumulates_and_rejects_negative():
    reg = MetricsRegistry()
    c = reg.counter("repro.test.count")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert reg.counter("repro.test.count") is c  # get-or-create
    with pytest.raises(InvalidParameterError):
        c.inc(-1)


def test_gauge_set_and_set_max():
    reg = MetricsRegistry()
    g = reg.gauge("repro.test.level")
    g.set(7)
    g.set(3)
    assert g.value == 3
    g.set_max(10)
    g.set_max(2)
    assert g.value == 10


def test_histogram_summary():
    reg = MetricsRegistry()
    h = reg.histogram("repro.test.sizes")
    assert h.as_value()["count"] == 0
    for v in (1, 2, 9):
        h.observe(v)
    summary = h.as_value()
    assert summary["count"] == 3
    assert summary["sum"] == 12
    assert summary["min"] == 1
    assert summary["max"] == 9
    assert summary["mean"] == 4.0
    # p-quantiles use NumPy's 'linear' interpolation over the samples
    assert summary["p50"] == 2.0
    assert summary["p95"] == pytest.approx(8.3)
    assert summary["p99"] == pytest.approx(8.86)
    assert h.samples == [1, 2, 9]


def test_histogram_caps_raw_samples():
    reg = MetricsRegistry()
    h = reg.histogram("repro.test.capped")
    h.keep = 4
    for v in range(10):
        h.observe(v)
    assert len(h.samples) == 4
    assert h.as_value()["count"] == 10


def test_name_validation():
    reg = MetricsRegistry()
    with pytest.raises(InvalidParameterError):
        reg.counter("NotNamespaced")
    with pytest.raises(InvalidParameterError):
        reg.counter("flat")  # must have at least one dot


def test_type_conflict_rejected():
    reg = MetricsRegistry()
    reg.counter("repro.test.x")
    with pytest.raises(InvalidParameterError):
        reg.gauge("repro.test.x")


def test_as_dict_snapshot():
    reg = MetricsRegistry()
    reg.counter("repro.test.a").inc(2)
    reg.gauge("repro.test.b").set(1.5)
    snap = reg.as_dict()
    assert snap["repro.test.a"] == 2
    assert snap["repro.test.b"] == 1.5
    assert reg.names() == ["repro.test.a", "repro.test.b"]


def test_module_helpers_target_active_registry():
    mine = MetricsRegistry()
    with use_registry(mine):
        assert get_registry() is mine
        inc("repro.test.hits", 3)
        set_gauge("repro.test.depth", 2)
        set_gauge_max("repro.test.peak", 9)
        observe("repro.test.dist", 1.0)
    assert mine.as_dict()["repro.test.hits"] == 3
    assert mine.as_dict()["repro.test.peak"] == 9
    assert get_registry() is not mine
    # nothing leaked into the default registry under these names? the
    # default registry is process-wide, so just assert restoration above.
