"""Span tracer: nesting, attributes, aggregation, ambient helpers."""

import pytest

from repro.obs.trace import Tracer, current_tracer, span, use_tracer


def test_nested_spans_form_a_tree():
    tracer = Tracer()
    with tracer.span("outer", variant="x") as outer:
        with tracer.span("inner_a") as a:
            pass
        with tracer.span("inner_b"):
            pass
    assert [r.name for r in tracer.roots] == ["outer"]
    assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
    assert outer.attrs == {"variant": "x"}
    assert a.seconds >= 0.0
    assert outer.seconds >= a.seconds


def test_walk_depth_first_with_depths():
    tracer = Tracer()
    with tracer.span("r1"):
        with tracer.span("c1"):
            with tracer.span("g1"):
                pass
    with tracer.span("r2"):
        pass
    walked = [(sp.name, d) for sp, d in tracer.walk()]
    assert walked == [("r1", 0), ("c1", 1), ("g1", 2), ("r2", 0)]
    assert len(tracer) == 4


def test_set_attrs_and_self_seconds():
    tracer = Tracer()
    with tracer.span("k") as sp:
        sp.set(work=10, rounds=2)
    assert sp.attrs == {"work": 10, "rounds": 2}
    assert 0.0 <= sp.self_seconds <= sp.seconds


def test_add_synthetic_span_nests_under_open_span():
    tracer = Tracer()
    with tracer.span("parent") as parent:
        tracer.add("child", 0.5, kind="synthetic")
    assert parent.children[0].name == "child"
    assert parent.children[0].seconds == 0.5
    assert tracer.add("root_level", 0.25) in tracer.roots


def test_by_name_first_seen_order_and_filter():
    tracer = Tracer()
    tracer.add("b", 1.0)
    tracer.add("a", 2.0)
    tracer.add("b", 3.0)
    assert list(tracer.by_name()) == ["b", "a"]
    assert tracer.by_name()["b"] == pytest.approx(4.0)
    assert tracer.by_name(names=["a"]) == {"a": 2.0}


def test_end_closes_dangling_children():
    tracer = Tracer()
    outer = tracer.begin("outer")
    tracer.begin("forgotten")
    tracer.end(outer)  # closes 'forgotten' too
    assert tracer.roots[0].children[0].seconds >= 0.0
    with pytest.raises(RuntimeError):
        tracer.end(outer)


def test_span_records_on_exception():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("x")
    assert tracer.roots[0].name == "boom"
    assert tracer.roots[0].seconds >= 0.0


def test_graft_adopts_roots():
    a, b = Tracer(), Tracer()
    b.add("other", 1.0)
    a.graft(b)
    assert [r.name for r in a.roots] == ["other"]


def test_ambient_tracer_helpers():
    assert current_tracer() is None
    with span("noop") as sp:
        assert sp is None  # no ambient tracer installed
    tracer = Tracer()
    with use_tracer(tracer):
        assert current_tracer() is tracer
        with span("ambient", k=3) as sp:
            assert sp is not None
    assert current_tracer() is None
    assert tracer.roots[0].name == "ambient"
    assert tracer.roots[0].attrs == {"k": 3}
