"""Histogram bucket/percentile math against a NumPy oracle."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.obs.histogram import (
    DEFAULT_MS_BOUNDARIES,
    bucket_index,
    bucket_percentile,
    check_boundaries,
    percentile,
)
from repro.obs.metrics import MetricsRegistry


def test_default_boundaries_are_valid():
    assert check_boundaries(DEFAULT_MS_BOUNDARIES) == DEFAULT_MS_BOUNDARIES
    assert list(DEFAULT_MS_BOUNDARIES) == sorted(DEFAULT_MS_BOUNDARIES)


def test_check_boundaries_rejects_bad_input():
    with pytest.raises(InvalidParameterError):
        check_boundaries(())
    with pytest.raises(InvalidParameterError):
        check_boundaries((1.0, 1.0))
    with pytest.raises(InvalidParameterError):
        check_boundaries((2.0, 1.0))


def test_bucket_index_le_semantics():
    bounds = (1.0, 5.0, 10.0)
    # Prometheus buckets are cumulative "le": a value lands in the first
    # bucket whose boundary is >= the value
    assert bucket_index(bounds, 0.5) == 0
    assert bucket_index(bounds, 1.0) == 0
    assert bucket_index(bounds, 1.0001) == 1
    assert bucket_index(bounds, 5.0) == 1
    assert bucket_index(bounds, 10.0) == 2
    assert bucket_index(bounds, 99.0) == 3  # overflow (+Inf) bucket


@pytest.mark.parametrize("q", [0, 1, 25, 50, 75, 95, 99, 100])
@pytest.mark.parametrize(
    "samples",
    [
        [3.0],
        [1.0, 2.0, 9.0],
        [0.1, 0.1, 0.1, 0.1],
        list(np.linspace(0.5, 120.0, 37)),
        list(np.random.default_rng(6).lognormal(1.0, 2.0, size=101)),
    ],
)
def test_percentile_matches_numpy_oracle(samples, q):
    """The exact-samples path must reproduce np.percentile bit for bit."""
    sorted_samples = sorted(float(s) for s in samples)
    ours = percentile(sorted_samples, q)
    oracle = float(np.percentile(np.array(sorted_samples), q))
    assert ours == oracle


def test_histogram_summary_matches_numpy_oracle():
    """End-to-end: registry histogram p50/p95/p99 == np.percentile."""
    rng = np.random.default_rng(42)
    samples = [float(v) for v in rng.exponential(5.0, size=200)]
    reg = MetricsRegistry()
    h = reg.histogram("repro.test.latency")
    for v in samples:
        h.observe(v)
    value = h.as_value()
    arr = np.array(samples)
    for q in (50, 95, 99):
        assert value[f"p{q}"] == float(np.percentile(arr, q))


def test_bucket_percentile_interpolates_and_clamps():
    bounds = (1.0, 2.0, 4.0)
    # 10 observations in (1, 2], none elsewhere
    counts = [0, 10, 0, 0]
    p = bucket_percentile(bounds, counts, 50, lo_clamp=1.0, hi_clamp=2.0)
    assert 1.0 <= p <= 2.0
    # clamping: the estimate never leaves the observed [min, max] range
    assert bucket_percentile(bounds, counts, 0, lo_clamp=1.3, hi_clamp=1.8) == 1.3
    assert bucket_percentile(bounds, counts, 100, lo_clamp=1.3, hi_clamp=1.8) == 1.8
    with pytest.raises(InvalidParameterError):
        bucket_percentile(bounds, [0, 0, 0, 0], 50, lo_clamp=0.0, hi_clamp=0.0)


def test_histogram_switches_to_bucket_estimate_after_sample_cap():
    reg = MetricsRegistry()
    h = reg.histogram("repro.test.capped_buckets", boundaries=(1.0, 10.0, 100.0))
    h.keep = 8
    for v in [2.0] * 50:
        h.observe(v)
    # raw samples overflowed the cap: percentile comes from the buckets
    p50 = h.percentile(50)
    assert p50 is not None
    assert 1.0 <= p50 <= 10.0
    assert h.bucket_counts == [0, 50, 0, 0]
