"""Structured logging setup and key=value formatting."""

import io
import logging

import pytest

from repro.errors import InvalidParameterError
from repro.obs.logging import get_logger, kv, setup_logging


def test_kv_formats_pairs_and_quotes():
    assert kv("build", variant="afforest", edges=10) == (
        "event=build variant=afforest edges=10"
    )
    assert kv("x", path="a b") == 'event=x path="a b"'
    assert kv("x", expr="a=b") == 'event=x expr="a=b"'


def test_setup_logging_emits_key_value_lines():
    stream = io.StringIO()
    log = setup_logging("info", stream=stream)
    log.info(kv("hello", n=1))
    line = stream.getvalue().strip()
    assert "level=info" in line
    assert "logger=repro" in line
    assert "event=hello n=1" in line


def test_setup_logging_idempotent_and_level_filter():
    stream = io.StringIO()
    setup_logging("info", stream=stream)
    log = setup_logging("warning", stream=stream)
    assert len(log.handlers) == 1  # no stacked handlers
    log.info(kv("dropped"))
    log.warning(kv("kept"))
    out = stream.getvalue()
    assert "dropped" not in out
    assert "kept" in out
    # restore a quiet default for other tests
    log.setLevel(logging.WARNING)


def test_child_logger_under_repro_tree():
    assert get_logger("cli").name == "repro.cli"


def test_bad_level_rejected():
    with pytest.raises(InvalidParameterError):
        setup_logging("verbose")
