"""End-to-end observability smoke test.

Mirrors the acceptance criterion: ``python -m repro index`` on a small
RMAT graph with ``--trace-out``/``--metrics-out`` must produce a JSONL
trace covering all six paper kernels and a metrics JSON with at least 8
distinct names; the trace diffed against itself reports zero
regressions, and both files round-trip through the schema validators.
"""

import pytest

from repro.cli import main
from repro.equitruss.kernels import KERNELS
from repro.obs.diff import diff_trace_files
from repro.obs.export import read_metrics_json, read_trace_jsonl, write_trace_jsonl
from repro.obs.exporter import read_metrics_jsonl
from repro.obs.manifest import read_manifest


@pytest.fixture(scope="module")
def run_artifacts(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("obs_smoke")
    graph = tmp / "g.npz"
    assert main(["generate", "rmat", "--scale", "7", "--edge-factor", "8",
                 "--seed", "3", "--out", str(graph)]) == 0
    trace = tmp / "t.jsonl"
    metrics = tmp / "m.json"
    assert main(["index", str(graph), "--variant", "afforest",
                 "--out", str(tmp / "i.npz"),
                 "--trace-out", str(trace), "--metrics-out", str(metrics)]) == 0
    return trace, metrics


def test_trace_covers_all_six_paper_kernels(run_artifacts):
    trace, _ = run_artifacts
    spans = read_trace_jsonl(trace)  # read_* validates the schema
    names = {r["name"] for r in spans}
    assert set(KERNELS) <= names, f"missing kernels: {set(KERNELS) - names}"
    # hierarchy: per-level wrapper spans carry the k attribute
    level_ks = [r["attrs"]["k"] for r in spans if r["name"] == "Level"]
    assert level_ks == sorted(level_ks) and len(level_ks) >= 1
    roots = [r for r in spans if r["parent"] is None]
    assert [r["name"] for r in roots] == ["BuildIndex"]


def test_metrics_snapshot_has_enough_distinct_names(run_artifacts):
    _, metrics = run_artifacts
    loaded = read_metrics_json(metrics)
    assert len(loaded) >= 8
    assert all(name.startswith("repro.") for name in loaded)
    assert loaded["repro.pipeline.builds"] == 1
    assert loaded["repro.equitruss.supernodes"] > 0
    assert loaded["repro.truss.kmax"] >= 3


def test_self_diff_reports_zero_regressions(run_artifacts):
    trace, _ = run_artifacts
    diff = diff_trace_files(trace, trace)
    assert diff.ok
    assert "0 regression(s)" in diff.format()


def test_info_trace_prints_breakdown(run_artifacts, capsys):
    trace, _ = run_artifacts
    assert main(["info", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    for kernel in KERNELS:
        assert kernel in out
    assert main(["info", "--trace", str(trace), "--flame"]) == 0
    out = capsys.readouterr().out
    assert "BuildIndex" in out and "Level" in out


def test_info_without_file_or_trace_errors(capsys):
    assert main(["info"]) == 2
    assert "required" in capsys.readouterr().err


def test_info_trace_degrades_gracefully_on_empty_file(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("", encoding="utf-8")
    assert main(["info", "--trace", str(empty), "--flame"]) == 0
    assert "empty trace" in capsys.readouterr().out


def test_info_trace_degrades_gracefully_on_span_free_file(tmp_path, capsys):
    from repro.obs.trace import Tracer

    trace = tmp_path / "spanless.jsonl"
    write_trace_jsonl(Tracer(), trace)  # meta line only, zero spans
    assert main(["info", "--trace", str(trace), "--flame"]) == 0
    assert "no spans" in capsys.readouterr().out


def test_index_writes_prometheus_and_manifest(tmp_path):
    graph = tmp_path / "g.npz"
    assert main(["generate", "gnm", "--n", "60", "--m", "240",
                 "--seed", "1", "--out", str(graph)]) == 0
    trace = tmp_path / "t.jsonl"
    prom = tmp_path / "metrics.prom"
    assert main(["index", str(graph), "--out", str(tmp_path / "i.npz"),
                 "--trace-out", str(trace), "--prom-out", str(prom)]) == 0
    text = prom.read_text(encoding="utf-8")
    assert "# TYPE repro_pipeline_builds counter" in text
    assert "repro_pipeline_builds 1" in text
    # the manifest is written automatically next to the trace
    manifest = read_manifest(f"{trace}.manifest.json")
    assert manifest["dataset"]["name"] == str(graph)
    assert manifest["execution"]["backend"] == "serial"
    assert manifest["extra"]["command"] == "index"


def test_index_env_driven_metrics_stream(tmp_path, monkeypatch):
    graph = tmp_path / "g.npz"
    assert main(["generate", "gnm", "--n", "40", "--m", "160",
                 "--seed", "2", "--out", str(graph)]) == 0
    stream = tmp_path / "stream.jsonl"
    monkeypatch.setenv("REPRO_METRICS_INTERVAL", "60")
    monkeypatch.setenv("REPRO_METRICS_PATH", str(stream))
    assert main(["index", str(graph), "--out", str(tmp_path / "i.npz")]) == 0
    records = read_metrics_jsonl(stream)
    assert len(records) >= 1  # stop() always flushes a final snapshot
    assert records[-1]["metrics"]["repro.pipeline.builds"] == 1
