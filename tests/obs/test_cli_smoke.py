"""End-to-end observability smoke test.

Mirrors the acceptance criterion: ``python -m repro index`` on a small
RMAT graph with ``--trace-out``/``--metrics-out`` must produce a JSONL
trace covering all six paper kernels and a metrics JSON with at least 8
distinct names; the trace diffed against itself reports zero
regressions, and both files round-trip through the schema validators.
"""

import pytest

from repro.cli import main
from repro.equitruss.kernels import KERNELS
from repro.obs.diff import diff_trace_files
from repro.obs.export import read_metrics_json, read_trace_jsonl


@pytest.fixture(scope="module")
def run_artifacts(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("obs_smoke")
    graph = tmp / "g.npz"
    assert main(["generate", "rmat", "--scale", "7", "--edge-factor", "8",
                 "--seed", "3", "--out", str(graph)]) == 0
    trace = tmp / "t.jsonl"
    metrics = tmp / "m.json"
    assert main(["index", str(graph), "--variant", "afforest",
                 "--out", str(tmp / "i.npz"),
                 "--trace-out", str(trace), "--metrics-out", str(metrics)]) == 0
    return trace, metrics


def test_trace_covers_all_six_paper_kernels(run_artifacts):
    trace, _ = run_artifacts
    spans = read_trace_jsonl(trace)  # read_* validates the schema
    names = {r["name"] for r in spans}
    assert set(KERNELS) <= names, f"missing kernels: {set(KERNELS) - names}"
    # hierarchy: per-level wrapper spans carry the k attribute
    level_ks = [r["attrs"]["k"] for r in spans if r["name"] == "Level"]
    assert level_ks == sorted(level_ks) and len(level_ks) >= 1
    roots = [r for r in spans if r["parent"] is None]
    assert [r["name"] for r in roots] == ["BuildIndex"]


def test_metrics_snapshot_has_enough_distinct_names(run_artifacts):
    _, metrics = run_artifacts
    loaded = read_metrics_json(metrics)
    assert len(loaded) >= 8
    assert all(name.startswith("repro.") for name in loaded)
    assert loaded["repro.pipeline.builds"] == 1
    assert loaded["repro.equitruss.supernodes"] > 0
    assert loaded["repro.truss.kmax"] >= 3


def test_self_diff_reports_zero_regressions(run_artifacts):
    trace, _ = run_artifacts
    diff = diff_trace_files(trace, trace)
    assert diff.ok
    assert "0 regression(s)" in diff.format()


def test_info_trace_prints_breakdown(run_artifacts, capsys):
    trace, _ = run_artifacts
    assert main(["info", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    for kernel in KERNELS:
        assert kernel in out
    assert main(["info", "--trace", str(trace), "--flame"]) == 0
    out = capsys.readouterr().out
    assert "BuildIndex" in out and "Level" in out


def test_info_without_file_or_trace_errors(capsys):
    assert main(["info"]) == 2
    assert "required" in capsys.readouterr().err
