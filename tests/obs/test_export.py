"""JSONL trace / JSON metrics export, import, and schema validation."""

import json

import pytest

from repro.errors import GraphFormatError
from repro.obs.export import (
    read_metrics_json,
    read_trace_jsonl,
    trace_records,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("BuildIndex", variant="afforest"):
        with tracer.span("Support"):
            pass
        with tracer.span("Level", k=3):
            with tracer.span("SpNode") as sp:
                sp.set(work=10, rounds=2)
    return tracer


def test_trace_records_shape():
    records = trace_records(_sample_tracer())
    assert records[0] == {"type": "meta", "schema": "repro.trace", "version": 1}
    spans = records[1:]
    assert [r["name"] for r in spans] == ["BuildIndex", "Support", "Level", "SpNode"]
    assert [r["depth"] for r in spans] == [0, 1, 1, 2]
    by_id = {r["id"]: r for r in spans}
    spnode = spans[3]
    assert by_id[spnode["parent"]]["name"] == "Level"
    assert spans[0]["parent"] is None
    assert spnode["attrs"] == {"work": 10, "rounds": 2}


def test_trace_jsonl_roundtrip(tmp_path):
    tracer = _sample_tracer()
    path = write_trace_jsonl(tracer, tmp_path / "t.jsonl")
    spans = read_trace_jsonl(path)
    assert [r["name"] for r in spans] == ["BuildIndex", "Support", "Level", "SpNode"]
    # writing the loaded records back reproduces the file byte-for-byte
    meta = {"type": "meta", "schema": "repro.trace", "version": 1}
    path2 = write_trace_jsonl([meta, *spans], tmp_path / "t2.jsonl")
    assert path.read_text() == path2.read_text()


def test_trace_validation_errors(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(GraphFormatError, match="empty"):
        read_trace_jsonl(empty)

    no_meta = tmp_path / "no_meta.jsonl"
    no_meta.write_text(json.dumps({"type": "span"}) + "\n")
    with pytest.raises(GraphFormatError, match="meta"):
        read_trace_jsonl(no_meta)

    bad_span = tmp_path / "bad.jsonl"
    bad_span.write_text(
        json.dumps({"type": "meta", "schema": "repro.trace", "version": 1})
        + "\n"
        + json.dumps({"type": "span", "name": "x"})
        + "\n"
    )
    with pytest.raises(GraphFormatError, match="missing fields"):
        read_trace_jsonl(bad_span)

    bad_json = tmp_path / "badjson.jsonl"
    bad_json.write_text("{not json\n")
    with pytest.raises(GraphFormatError, match="invalid JSON"):
        read_trace_jsonl(bad_json)


def test_metrics_roundtrip(tmp_path):
    reg = MetricsRegistry()
    reg.counter("repro.test.a").inc(3)
    reg.histogram("repro.test.h").observe(2.0)
    path = write_metrics_json(reg, tmp_path / "m.json")
    loaded = read_metrics_json(path)
    assert loaded["repro.test.a"] == 3
    assert loaded["repro.test.h"]["count"] == 1
    # plain dicts work too
    path2 = write_metrics_json(loaded, tmp_path / "m2.json")
    assert read_metrics_json(path2) == loaded


def test_metrics_validation_errors(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "other"}))
    with pytest.raises(GraphFormatError, match="repro.metrics"):
        read_metrics_json(bad)
    bad.write_text(json.dumps({"schema": "repro.metrics", "metrics": [1]}))
    with pytest.raises(GraphFormatError, match="object"):
        read_metrics_json(bad)
