"""Prometheus renderer + rolling JSONL metrics emitter."""

import pytest

from repro.errors import InvalidParameterError
from repro.obs.exporter import (
    MetricsEmitter,
    emitter_from_env,
    prometheus_name,
    read_metrics_jsonl,
    render_prometheus,
)
from repro.obs.metrics import METRICS_SCHEMA_VERSION, MetricsRegistry


def make_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro.test.hits").inc(5)
    reg.gauge("repro.test.depth").set(2.5)
    h = reg.histogram("repro.test.lat_ms", boundaries=(1.0, 10.0))
    for v in (0.5, 3.0, 3.0, 40.0):
        h.observe(v)
    s = reg.histogram("repro.test.sizes")
    for v in (1.0, 2.0, 9.0):
        s.observe(v)
    return reg


def test_prometheus_name_sanitizes():
    assert prometheus_name("repro.serve.latency_ms") == "repro_serve_latency_ms"
    assert prometheus_name("a-b.c") == "a_b_c"


def test_render_prometheus_counter_gauge_histogram():
    text = render_prometheus(make_registry())
    lines = text.splitlines()
    assert "# TYPE repro_test_hits counter" in lines
    assert "repro_test_hits 5" in lines
    assert "# TYPE repro_test_depth gauge" in lines
    assert "repro_test_depth 2.5" in lines
    # fixed-boundary histogram: cumulative le buckets + sum/count
    assert "# TYPE repro_test_lat_ms histogram" in lines
    assert 'repro_test_lat_ms_bucket{le="1"} 1' in lines
    assert 'repro_test_lat_ms_bucket{le="10"} 3' in lines
    assert 'repro_test_lat_ms_bucket{le="+Inf"} 4' in lines
    assert "repro_test_lat_ms_count 4" in lines
    # ... plus pre-estimated quantile companion gauges (the serving
    # frontend's scrape surface reads p50/p99 without PromQL)
    assert "# TYPE repro_test_lat_ms_p50 gauge" in lines
    assert "repro_test_lat_ms_p50 3" in lines
    assert any(line.startswith("repro_test_lat_ms_p99 ") for line in lines)
    # summary-only histogram: quantile series
    assert "# TYPE repro_test_sizes summary" in lines
    assert 'repro_test_sizes{quantile="0.5"} 2' in lines
    assert "repro_test_sizes_count 3" in lines


def test_render_prometheus_empty_registry():
    assert render_prometheus(MetricsRegistry()) == ""


def test_emitter_appends_schema_stamped_lines(tmp_path):
    reg = make_registry()
    path = tmp_path / "metrics.jsonl"
    emitter = MetricsEmitter(path, registry=reg)
    emitter.emit_once()
    reg.counter("repro.test.hits").inc()
    emitter.emit_once()
    records = read_metrics_jsonl(path)
    assert len(records) == 2
    for rec in records:
        assert rec["schema"] == "repro.metrics"
        assert rec["version"] == METRICS_SCHEMA_VERSION
        assert "unix" in rec
    assert records[0]["metrics"]["repro.test.hits"] == 5
    assert records[1]["metrics"]["repro.test.hits"] == 6


def test_emitter_thread_lifecycle(tmp_path):
    reg = make_registry()
    path = tmp_path / "stream.jsonl"
    with MetricsEmitter(path, interval=0.01, registry=reg):
        reg.counter("repro.test.hits").inc()
    # stop() always writes a final snapshot, so even instant runs have
    # at least one line
    records = read_metrics_jsonl(path)
    assert len(records) >= 1
    assert records[-1]["metrics"]["repro.test.hits"] == 6


def test_emitter_rejects_bad_interval(tmp_path):
    with pytest.raises(InvalidParameterError):
        MetricsEmitter(tmp_path / "x.jsonl", interval=0)


def test_emitter_from_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_METRICS_INTERVAL", raising=False)
    monkeypatch.delenv("REPRO_METRICS_PATH", raising=False)
    assert emitter_from_env() is None  # no interval: off

    monkeypatch.setenv("REPRO_METRICS_INTERVAL", "0.5")
    assert emitter_from_env() is None  # interval but nowhere to write

    path = tmp_path / "env.jsonl"
    monkeypatch.setenv("REPRO_METRICS_PATH", str(path))
    emitter = emitter_from_env()
    assert emitter is not None
    assert emitter.interval == 0.5
    assert emitter.path == path

    monkeypatch.setenv("REPRO_METRICS_INTERVAL", "not-a-number")
    with pytest.raises(InvalidParameterError):
        emitter_from_env()
