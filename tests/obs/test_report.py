"""ASCII breakdown table and flamegraph rendering."""

from repro.obs.export import trace_records
from repro.obs.report import aggregate_spans, breakdown_table, flamegraph
from repro.obs.trace import Tracer


def _tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("BuildIndex"):
        tracer.add("Support", 1.0)
        with tracer.span("Level", k=3):
            tracer.add("SpNode", 2.0)
            tracer.add("SpEdge", 1.0)
    return tracer


def test_aggregate_spans_include_filter_avoids_double_count():
    tracer = _tracer()
    agg = aggregate_spans(tracer, include=["Support", "SpNode", "SpEdge"])
    assert agg == {"Support": 1.0, "SpNode": 2.0, "SpEdge": 1.0}
    # unfiltered aggregation includes the wrappers
    assert "BuildIndex" in aggregate_spans(tracer)


def test_breakdown_table_renders_names_and_percentages():
    out = breakdown_table(_tracer(), include=["Support", "SpNode", "SpEdge"])
    assert "SpNode" in out and "Support" in out
    assert "50.0%" in out  # SpNode is half of the filtered total
    assert "total" in out
    assert breakdown_table(Tracer()) == "(no spans)"


def test_breakdown_table_accepts_loaded_records():
    records = [r for r in trace_records(_tracer()) if r["type"] == "span"]
    out = breakdown_table(records, include=["SpNode"])
    assert "SpNode" in out


def test_flamegraph_indents_by_depth():
    out = flamegraph(_tracer())
    lines = out.splitlines()
    assert lines[0].startswith("BuildIndex")
    assert any(line.startswith("  Support") for line in lines)
    assert any(line.startswith("    SpNode") for line in lines)
    assert "k=3" in out
    assert flamegraph(Tracer()) == "(no spans)"
