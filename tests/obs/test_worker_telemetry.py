"""Cross-process telemetry: task envelopes, span shipping, bit-exact
counter reduction, and the lossless export round-trip."""

import json

import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import paper_example_graph
from repro.obs import metrics as metrics_mod
from repro.obs.export import (
    read_trace_jsonl,
    spans_from_records,
    trace_records,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.trace import Tracer
from repro.obs.worker import (
    WORKER_ENVELOPE_VERSION,
    capture_task,
    merge_envelope,
)
from repro.parallel.shm import process_backend_available

needs_fork = pytest.mark.skipif(
    not process_backend_available(),
    reason="fork or POSIX shared memory unavailable",
)

#: Counters whose process-run registry totals must equal the serial
#: totals bit-exactly, wherever the increments happen.
WORKER_COUNTERS = (
    "repro.triangles.support_updates",
    "repro.truss.support_decrements",
    "repro.truss.bucket_moves",
    "repro.equitruss.superedge_candidates",
)

#: The subset incremented *inside worker tasks* under the default bucket
#: peeling schedule, so their per-worker span partials must also reduce
#: to the serial totals. ``support_decrements`` is absent: the bucket
#: schedule applies decrements on the coordinator (only the scan
#: schedule fans them out), so its worker partials are legitimately 0.
WORKER_SPAN_COUNTERS = (
    "repro.triangles.support_updates",
    "repro.truss.bucket_moves",
    "repro.equitruss.superedge_candidates",
)


def _noisy_fn(x):
    from repro.obs.trace import span

    metrics_mod.inc("repro.test.units", x)
    metrics_mod.observe("repro.test.task_part", float(x))
    with span("inner"):
        pass
    return x * 2


# ----------------------------------------------------------------------
# capture_task / merge_envelope units (no fork required: the envelope
# protocol is identical inline and cross-process)
# ----------------------------------------------------------------------

def test_capture_task_isolates_and_ships_telemetry():
    outer = MetricsRegistry()
    with use_registry(outer):
        out, seconds, env = capture_task("MyKernel", _noisy_fn, (21,))
    assert out == 42
    assert seconds >= 0
    assert env["version"] == WORKER_ENVELOPE_VERSION
    assert isinstance(env["pid"], int)
    # nothing leaked into the caller's registry...
    assert outer.names() == []
    # ...everything landed in the envelope
    assert env["metrics"]["counters"]["repro.test.units"] == 21
    names = [r["name"] for r in env["spans"] if r["type"] == "span"]
    assert names == ["MyKernel", "inner"]


def test_merge_envelope_grafts_spans_and_reduces_metrics():
    _, _, env = capture_task("K", _noisy_fn, (5,))
    _, _, env2 = capture_task("K", _noisy_fn, (7,))
    tracer = Tracer()
    registry = MetricsRegistry()
    parent = tracer.add("Worker[0]", 0.01, worker_id=0)
    merge_envelope(env, parent, registry)
    merge_envelope(env2, tracer.add("Worker[1]", 0.01, worker_id=1), registry)
    assert [c.name for c in parent.children] == ["K"]
    assert parent.attrs["pid"] == env["pid"]
    assert parent.attrs["counters"] == {"repro.test.units": 5}
    # counters add across envelopes, histograms merge exactly
    assert registry.counter("repro.test.units").value == 12
    h = registry.histogram("repro.test.task_part")
    assert h.count == 2 and h.total == 12.0


def test_worker_spans_survive_jsonl_round_trip_bit_identically(tmp_path):
    """Export → import → re-export of a grafted trace is byte-stable."""
    tracer = Tracer()
    registry = MetricsRegistry()
    for i, x in enumerate((3, 4)):
        _, seconds, env = capture_task("K", _noisy_fn, (x,))
        parent = tracer.add(f"Worker[{i}]", seconds, worker_id=i, n_tasks=2)
        merge_envelope(env, parent, registry)

    records = trace_records(tracer)
    path = write_trace_jsonl(tracer, tmp_path / "t.jsonl")
    loaded = read_trace_jsonl(path)

    rebuilt = Tracer()
    rebuilt.roots.extend(spans_from_records(loaded))
    records2 = trace_records(rebuilt)
    assert records2 == records
    # and the files themselves are byte-identical
    path2 = write_trace_jsonl(rebuilt, tmp_path / "t2.jsonl")
    assert path2.read_bytes() == path.read_bytes()


def test_envelope_is_json_serializable():
    _, _, env = capture_task("K", _noisy_fn, (9,))
    json.dumps(env)  # no numpy scalars, no exotic types


# ----------------------------------------------------------------------
# the acceptance run: 4 fork workers on the Fig. 3 graph
# ----------------------------------------------------------------------

def _build_with_registry(backend_name, workers):
    from repro.equitruss import build_index
    from repro.parallel.context import ExecutionContext

    g = CSRGraph.from_edgelist(paper_example_graph())
    registry = MetricsRegistry()
    with use_registry(registry):
        if backend_name == "process":
            from repro.parallel.shm import ProcessBackend

            backend = ProcessBackend(num_workers=workers, min_items=0)
        else:
            backend = backend_name
        ctx = ExecutionContext(backend=backend, num_workers=workers)
        try:
            build_index(g, ctx=ctx)
        finally:
            if backend_name == "process":
                ctx.close()
    return ctx, registry


@pytest.mark.process_backend
@needs_fork
def test_four_worker_build_ships_spans_and_reduces_counters_bit_exactly():
    serial_ctx, serial_reg = _build_with_registry("serial", 1)
    proc_ctx, proc_reg = _build_with_registry("process", 4)

    # every Worker[i] span contains >= 1 kernel span recorded inside the
    # worker process, attributed via worker_id/pid
    worker_spans = [
        s for s, _ in proc_ctx.tracer.walk() if "worker_id" in s.attrs
    ]
    assert worker_spans, "process run produced no worker fan-out spans"
    import os

    for s in worker_spans:
        assert s.children, f"{s.name} shipped no in-worker kernel spans"
        assert s.attrs["pid"] != os.getpid()
        assert s.attrs["n_tasks"] >= 1
        assert s.attrs["bytes_touched"] >= 0

    # worker-attributed counters reduce to the serial totals bit-exactly
    serial = serial_reg.as_dict()
    parallel = proc_reg.as_dict()
    for name in WORKER_COUNTERS:
        assert name in serial, f"serial run never incremented {name}"
        assert parallel.get(name) == serial[name]

    # the per-worker partials stamped onto the spans also sum exactly
    for name in WORKER_SPAN_COUNTERS:
        partial = sum(
            (s.attrs.get("counters") or {}).get(name, 0) for s in worker_spans
        )
        assert partial == serial[name]

    # the fan-out latency histogram observed one value per task
    task_ms = parallel["repro.parallel.task_ms"]
    assert task_ms["count"] == len(worker_spans)
    assert task_ms["buckets"]["counts"][-1] == 0  # nothing past 10 s
