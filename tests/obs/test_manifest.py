"""Run-provenance manifests: collect, validate, round-trip, attach."""

import pytest

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.generators import paper_example_graph
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_VERSION,
    collect_manifest,
    dataset_fingerprint,
    read_manifest,
    validate_manifest,
    write_manifest,
)
from repro.parallel.context import ExecutionContext


def test_collect_manifest_minimal_shape():
    doc = collect_manifest()
    validate_manifest(doc)
    assert doc["schema"] == MANIFEST_SCHEMA
    assert doc["version"] == MANIFEST_SCHEMA_VERSION
    assert doc["execution"] is None
    assert doc["dataset"] is None
    assert doc["host"]["cpu_count"] >= 1
    versions = doc["schema_versions"]
    assert set(versions) == {
        "trace", "metrics", "manifest", "snapshot", "store", "journal"
    }


def test_collect_manifest_with_context_and_graph():
    g = CSRGraph.from_edgelist(paper_example_graph())
    ctx = ExecutionContext(backend="serial", num_workers=1)
    ctx.workspace.take("probe", 128, "int64")  # leave a high-water mark
    doc = collect_manifest(
        ctx=ctx, graph=g, dataset="fig3", extra={"experiment": "unit"}
    )
    validate_manifest(doc)
    ex = doc["execution"]
    assert ex["backend"] == "serial"
    assert ex["num_workers"] == 1
    assert ex["dtype_policy"] == "auto"
    assert ex["ws_peak"] >= 128 * 8
    assert ex["shm_high_water"] == 0
    ds = doc["dataset"]
    assert ds["name"] == "fig3"
    assert ds["vertices"] == g.num_vertices
    assert ds["edges"] == g.num_edges
    assert len(ds["sha256"]) == 64
    assert doc["extra"]["experiment"] == "unit"


def test_dataset_fingerprint_is_content_based():
    g1 = CSRGraph.from_edgelist(paper_example_graph())
    g2 = CSRGraph.from_edgelist(paper_example_graph())
    assert dataset_fingerprint(g1)["sha256"] == dataset_fingerprint(g2)["sha256"]
    # an edge list fingerprinted directly matches its graph's fingerprint
    e = paper_example_graph()
    assert dataset_fingerprint(e)["edges"] == g1.num_edges


def test_manifest_round_trip(tmp_path):
    doc = collect_manifest(extra={"note": "rt"})
    path = write_manifest(doc, tmp_path / "run.manifest.json")
    loaded = read_manifest(path)
    assert loaded == doc


def test_validate_manifest_rejects_malformed():
    with pytest.raises(GraphFormatError):
        validate_manifest({"schema": "something.else"})
    doc = collect_manifest()
    doc["version"] = 99
    with pytest.raises(GraphFormatError):
        validate_manifest(doc)
    doc = collect_manifest()
    del doc["schema_versions"]["trace"]
    with pytest.raises(GraphFormatError):
        validate_manifest(doc)


def test_read_manifest_rejects_bad_json(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text("{not json", encoding="utf-8")
    with pytest.raises(GraphFormatError):
        read_manifest(p)


def test_snapshot_attach_manifest(tmp_path):
    from repro.bench.snapshot import PerfSnapshot, load_snapshot

    snap = PerfSnapshot("unit", path=tmp_path / "BENCH_unit.json")
    snap.add_run("exp", "fig3", "afforest", "serial", 1, 0.1)
    snap.attach_manifest(collect_manifest())
    path = snap.write()
    doc = load_snapshot(path)
    assert doc["manifest"]["schema"] == MANIFEST_SCHEMA
    # reloading the snapshot keeps the manifest
    snap2 = PerfSnapshot("unit", path=path)
    assert snap2.doc["manifest"]["schema"] == MANIFEST_SCHEMA
    with pytest.raises(GraphFormatError):
        snap.attach_manifest({"schema": "nope"})


def test_snapshot_validation_rejects_bad_manifest(tmp_path):
    from repro.bench.snapshot import PerfSnapshot, validate_snapshot

    snap = PerfSnapshot("unit2", path=tmp_path / "BENCH_unit2.json")
    snap.doc["manifest"] = {"schema": "wrong"}
    with pytest.raises(ValueError):
        validate_snapshot(snap.doc)
